#ifndef HISTEST_DIST_PIECEWISE_H_
#define HISTEST_DIST_PIECEWISE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/math_util.h"
#include "common/status.h"
#include "dist/distribution.h"
#include "dist/interval.h"

namespace histest {

/// A succinct piecewise-constant non-negative function over [0, n): the
/// representation of a k-histogram.
///
/// Each piece assigns a constant per-element value to a contiguous interval;
/// pieces cover the domain exactly. Unlike `Distribution`, the total mass is
/// not required to be 1: the learner of Lemma 3.5 and subdomain restrictions
/// naturally produce sub- or super-probability functions. `Normalized()`
/// projects back onto the simplex.
class PiecewiseConstant {
 public:
  struct Piece {
    Interval interval;
    /// Per-element value (so the piece's mass is value * interval.size()).
    double value = 0.0;

    friend bool operator==(const Piece& a, const Piece& b) {
      return a.interval == b.interval && ExactlyEqual(a.value, b.value);
    }
  };

  /// Validates that pieces are contiguous, cover [0, n), and have finite
  /// non-negative values.
  static Result<PiecewiseConstant> Create(size_t n, std::vector<Piece> pieces);

  /// Builds the histogram over `partition` whose interval j has total mass
  /// `interval_masses[j]`, spread uniformly within the interval.
  static PiecewiseConstant FromPartitionMasses(
      const Partition& partition, const std::vector<double>& interval_masses);

  /// Flat (1-piece) function of the given constant value over [0, n).
  static PiecewiseConstant Flat(size_t n, double value);

  /// Exact piecewise view of a dense distribution (one piece per maximal run
  /// of equal values).
  static PiecewiseConstant FromDistribution(const Distribution& dist);

  size_t domain_size() const { return n_; }
  size_t NumPieces() const { return pieces_.size(); }
  const std::vector<Piece>& pieces() const { return pieces_; }

  /// Value at element i (binary search, O(log #pieces)).
  double ValueAt(size_t i) const;

  /// Mass of an arbitrary interval (O(#overlapping pieces + log)).
  double MassOf(const Interval& interval) const;

  /// Total mass over the whole domain.
  double TotalMass() const;

  /// Merges adjacent pieces with equal values; the result represents the
  /// same function with the minimum number of pieces.
  PiecewiseConstant Simplified() const;

  /// Scales all values so the total mass is 1. Requires positive total mass.
  Result<PiecewiseConstant> Normalized() const;

  /// Densifies into an explicit Distribution. Requires total mass within
  /// Distribution::kMassTolerance of 1.
  Result<Distribution> ToDistribution() const;

  /// Densifies into a raw value vector regardless of total mass.
  std::vector<double> ToDense() const;

  /// Densifies into caller-owned storage (e.g. a ScratchArena buffer) so
  /// per-trial expansion allocates nothing. Requires out.size() ==
  /// domain_size(). Writes identical values to ToDense().
  void ToDenseInto(std::span<double> out) const;

  /// True iff this function, as a distribution shape, has at most k pieces
  /// after simplification (i.e., lies in H_k structurally).
  bool IsKHistogram(size_t k) const;

 private:
  PiecewiseConstant(size_t n, std::vector<Piece> pieces)
      : n_(n), pieces_(std::move(pieces)) {}

  size_t n_;
  std::vector<Piece> pieces_;
};

}  // namespace histest

#endif  // HISTEST_DIST_PIECEWISE_H_
