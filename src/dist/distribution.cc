#include "dist/distribution.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace histest {

Distribution::Distribution(const Distribution& other) : pmf_(other.pmf_) {}

Distribution& Distribution::operator=(const Distribution& other) {
  if (this == &other) return *this;
  pmf_ = other.pmf_;
  delete prefix_index_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

Distribution::Distribution(Distribution&& other) noexcept
    : pmf_(std::move(other.pmf_)),
      prefix_index_(
          other.prefix_index_.exchange(nullptr, std::memory_order_acq_rel)) {}

Distribution& Distribution::operator=(Distribution&& other) noexcept {
  if (this == &other) return *this;
  pmf_ = std::move(other.pmf_);
  delete prefix_index_.exchange(
      other.prefix_index_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  return *this;
}

Distribution::~Distribution() {
  delete prefix_index_.load(std::memory_order_acquire);
}

// Lock-free lazy publication; see the prefix_index_ member comment in
// distribution.h for the full release/acquire contract. The fast path is
// one acquire load — adding a mutex (even the annotated wrapper) would put
// a lock acquisition on every PrefixIndex() call from every trial worker.
// No HISTEST_NO_THREAD_SAFETY_ANALYSIS is needed: the function touches no
// capability, so the analysis has nothing to (wrongly) flag.
const PrefixMassIndex& Distribution::PrefixIndex() const {
  const PrefixMassIndex* existing =
      prefix_index_.load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  const auto* built = new PrefixMassIndex(pmf_);
  const PrefixMassIndex* expected = nullptr;
  // Success order acq_rel: *release* so the built index's contents are
  // visible to any thread that sees the pointer, *acquire* so the winner
  // also synchronizes with any concurrent publication attempt. Failure
  // order acquire: `expected` then points at the winner's fully built copy.
  if (!prefix_index_.compare_exchange_strong(expected, built,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
    delete built;  // another thread published first; contents are identical
    return *expected;
  }
  return *built;
}

Result<Distribution> Distribution::Create(std::vector<double> pmf) {
  if (pmf.empty()) {
    return Status::InvalidArgument("pmf must be non-empty");
  }
  for (double p : pmf) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      return Status::InvalidArgument("pmf entries must be finite and >= 0");
    }
  }
  const double total = SumOf(pmf);
  if (std::fabs(total - 1.0) > kMassTolerance) {
    return Status::InvalidArgument("pmf must sum to 1 (got " +
                                   std::to_string(total) + ")");
  }
  for (double& p : pmf) p /= total;
  return Distribution(std::move(pmf));
}

Result<Distribution> Distribution::FromWeights(std::vector<double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("weights must be non-empty");
  }
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("weights must be finite and >= 0");
    }
  }
  const double total = SumOf(weights);
  if (total <= 0.0) {
    return Status::InvalidArgument("weights must have positive total");
  }
  for (double& w : weights) w /= total;
  return Distribution(std::move(weights));
}

Distribution Distribution::UniformOver(size_t n) {
  HISTEST_CHECK_GT(n, 0u);
  return Distribution(std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

Distribution Distribution::PointMass(size_t n, size_t i) {
  HISTEST_CHECK_GT(n, 0u);
  HISTEST_CHECK_LT(i, n);
  std::vector<double> pmf(n, 0.0);
  pmf[i] = 1.0;
  return Distribution(std::move(pmf));
}

double Distribution::MassOf(const Interval& interval) const {
  HISTEST_CHECK_LE(interval.end, pmf_.size());
  KahanSum acc;
  for (size_t i = interval.begin; i < interval.end; ++i) acc.Add(pmf_[i]);
  return acc.Total();
}

std::vector<double> Distribution::Cdf() const {
  // The prefix index stores exactly the inclusive prefix sums shifted by
  // one (same compensated order as the previous PrefixSums call), so this
  // both reuses and warms the shared index.
  const PrefixMassIndex& index = PrefixIndex();
  std::vector<double> cdf(pmf_.size());
  for (size_t i = 0; i < pmf_.size(); ++i) cdf[i] = index.Prefix(i + 1);
  if (!cdf.empty()) cdf.back() = 1.0;
  return cdf;
}

double Distribution::MaxProbability() const {
  return *std::max_element(pmf_.begin(), pmf_.end());
}

size_t Distribution::SupportSize() const {
  size_t count = 0;
  for (double p : pmf_) count += (p > 0.0) ? 1 : 0;
  return count;
}

Result<Distribution> Distribution::ConditionedOn(
    const std::vector<Interval>& intervals) const {
  std::vector<double> pmf(pmf_.size(), 0.0);
  for (const Interval& iv : intervals) {
    if (iv.end > pmf_.size()) {
      return Status::OutOfRange("interval " + iv.ToString() +
                                " exceeds domain");
    }
    for (size_t i = iv.begin; i < iv.end; ++i) pmf[i] = pmf_[i];
  }
  return FromWeights(std::move(pmf));
}

}  // namespace histest
