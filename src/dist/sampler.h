#ifndef HISTEST_DIST_SAMPLER_H_
#define HISTEST_DIST_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dist/distribution.h"
#include "dist/piecewise.h"

namespace histest {

/// Walker alias-method sampler: O(n) construction, O(1) per sample. This is
/// the workhorse behind every sample oracle.
class AliasSampler {
 public:
  /// Builds a sampler for the given distribution.
  explicit AliasSampler(const Distribution& dist);

  /// Builds a sampler from raw non-negative weights (normalized internally).
  /// Requires a positive total weight.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Domain size.
  size_t size() const { return prob_.size(); }

  /// Draws one sample.
  size_t Sample(Rng& rng) const;

  /// Draws `count` samples into `out` with one tight loop (no per-sample
  /// call overhead). Stream-identical to `count` repeated Sample() calls.
  void SampleBatch(Rng& rng, size_t* out, int64_t count) const;

  /// Draws `count` samples.
  std::vector<size_t> SampleMany(Rng& rng, size_t count) const;

  /// Read-only views of the alias table, for the per-variant resolve
  /// benchmarks and the SIMD differential tests.
  const std::vector<double>& prob() const { return prob_; }
  const std::vector<size_t>& alias() const { return alias_; }

 private:
  void Build(std::vector<double> weights);

  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

/// Sampler for a succinct piecewise-constant distribution: chooses a piece
/// by mass (alias method over pieces), then an element uniformly within it.
/// O(#pieces) construction, O(1) per sample — never densifies.
class PiecewiseSampler {
 public:
  /// Requires `pwc` to have positive total mass (it is normalized
  /// internally, so sub-probability functions sample their conditional).
  explicit PiecewiseSampler(const PiecewiseConstant& pwc);

  size_t domain_size() const { return domain_size_; }

  size_t Sample(Rng& rng) const;

  /// Batched draws, stream-identical to repeated Sample() calls.
  void SampleBatch(Rng& rng, size_t* out, int64_t count) const;

 private:
  size_t domain_size_;
  std::vector<Interval> piece_intervals_;
  AliasSampler piece_sampler_;
};

/// Draws N_i ~ Poisson(m * D(i)) independently for every element — the
/// Poissonization of drawing Poisson(m) iid samples (Section 2 of the
/// paper). Returns the count vector; O(n) expected time.
std::vector<int64_t> PoissonizedCounts(const Distribution& dist, double m,
                                       Rng& rng);

/// Draws exactly `m` iid samples and returns their count vector.
std::vector<int64_t> MultinomialCounts(const AliasSampler& sampler, int64_t m,
                                       Rng& rng);

}  // namespace histest

#endif  // HISTEST_DIST_SAMPLER_H_
