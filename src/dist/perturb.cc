#include "dist/perturb.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/kernels.h"
#include "common/math_util.h"

namespace histest {
namespace {

/// Collects the per-pair certificate weights (value of each paired element):
/// a pair of elements with common value v contributes delta * v to the
/// certified TV bound when a candidate histogram is constant across it.
std::vector<double> PairWeights(const PiecewiseConstant& base) {
  std::vector<double> weights;
  for (const auto& piece : base.pieces()) {
    const size_t pairs = piece.interval.size() / 2;
    for (size_t j = 0; j < pairs; ++j) weights.push_back(piece.value);
  }
  return weights;
}

/// Certificate value: delta * (sum of pair weights - the (k-1) largest).
double CertifiedBound(std::vector<double> weights, size_t k, double delta) {
  if (weights.empty()) return 0.0;
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  const size_t skip = std::min(weights.size(), k > 0 ? k - 1 : size_t{0});
  return delta * SumKernel(weights.data() + skip, weights.size() - skip);
}

}  // namespace

double MaxCertifiableFarness(const PiecewiseConstant& base, size_t k) {
  return CertifiedBound(PairWeights(base), k, 1.0);
}

Result<CertifiedFarInstance> MakePairedPerturbation(
    const PiecewiseConstant& base, size_t k, double delta, Rng& rng) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (!(delta >= 0.0) || delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1]");
  }
  std::vector<double> pmf = base.ToDense();
  for (const auto& piece : base.pieces()) {
    const size_t pairs = piece.interval.size() / 2;
    for (size_t j = 0; j < pairs; ++j) {
      const size_t lo = piece.interval.begin + 2 * j;
      const double bump = delta * piece.value;
      const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      pmf[lo] += sign * bump;
      pmf[lo + 1] -= sign * bump;
    }
  }
  auto dist = Distribution::Create(std::move(pmf));
  HISTEST_RETURN_IF_ERROR(dist.status());
  return CertifiedFarInstance{std::move(dist).value(),
                              CertifiedBound(PairWeights(base), k, delta), k};
}

Result<CertifiedFarInstance> MakeFarFromHk(const PiecewiseConstant& base,
                                           size_t k, double eps, Rng& rng) {
  if (!(eps > 0.0)) return Status::InvalidArgument("eps must be positive");
  const double max_bound = MaxCertifiableFarness(base, k);
  if (max_bound < eps) {
    return Status::FailedPrecondition(
        "base distribution cannot certify eps-farness from H_k: max "
        "certificate " +
        std::to_string(max_bound) + " < eps " + std::to_string(eps));
  }
  const double delta = std::min(1.0, eps / max_bound);
  auto instance = MakePairedPerturbation(base, k, delta, rng);
  HISTEST_RETURN_IF_ERROR(instance.status());
  HISTEST_CHECK_GE(instance.value().certified_tv_lower_bound, eps * (1 - 1e-9));
  return instance;
}

}  // namespace histest
