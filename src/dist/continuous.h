#ifndef HISTEST_DIST_CONTINUOUS_H_
#define HISTEST_DIST_CONTINUOUS_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "testing/tester.h"

namespace histest {

/// Support for continuous domains, per the paper's Section 2 remark: "our
/// techniques can be easily extended to continuous ones by suitably
/// gridding the range of values". A continuous source emits samples in
/// [0, 1); the gridding adapter buckets them into [0, n) cells, after
/// which every discrete tester applies. A density that is piecewise
/// constant over k real intervals grids to (roughly) a (k + #straddled
/// cells)-histogram, and TV distances can only contract under gridding, so
/// completeness is preserved exactly and soundness up to the grid
/// resolution (choose n large enough that the far-case distance survives;
/// the paper notes the choice of step is workload-dependent).

/// Source of iid real-valued samples in [0, 1).
class ContinuousSampleSource {
 public:
  virtual ~ContinuousSampleSource() = default;
  virtual double Draw() = 0;
};

/// Source defined by an inverse-CDF (quantile function) on [0, 1): draws
/// u ~ U[0,1) and returns quantile(u) clamped into [0, 1).
class QuantileSource : public ContinuousSampleSource {
 public:
  QuantileSource(std::function<double(double)> quantile, uint64_t seed);
  double Draw() override;

 private:
  std::function<double(double)> quantile_;
  Rng rng_;
};

/// A piecewise-constant density on [0, 1): k real intervals with constant
/// density; the continuous analogue of a k-histogram. Exposed so tests can
/// build in-class continuous instances with known structure.
class PiecewiseDensitySource : public ContinuousSampleSource {
 public:
  /// `breaks` are the interior breakpoints (sorted, in (0, 1)); `masses`
  /// has breaks.size() + 1 entries summing to ~1.
  static Result<std::unique_ptr<PiecewiseDensitySource>> Create(
      std::vector<double> breaks, std::vector<double> masses, uint64_t seed);

  double Draw() override;

 private:
  PiecewiseDensitySource(std::vector<double> edges,
                         std::vector<double> cumulative, uint64_t seed);

  std::vector<double> edges_;       // 0, breaks..., 1
  std::vector<double> cumulative_;  // cumulative masses, ending at 1
  Rng rng_;
};

/// The gridding adapter: a discrete SampleOracle over [0, n) whose draws
/// are floor(n * x) for x from the continuous source.
class GriddedOracle : public SampleOracle {
 public:
  /// Does not own the source; it must outlive the oracle.
  GriddedOracle(ContinuousSampleSource* source, size_t n);

  size_t DomainSize() const override { return n_; }
  size_t Draw() override;
  int64_t SamplesDrawn() const override { return drawn_; }

 private:
  ContinuousSampleSource* source_;
  size_t n_;
  int64_t drawn_ = 0;
};

}  // namespace histest

#endif  // HISTEST_DIST_CONTINUOUS_H_
