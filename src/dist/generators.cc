#include "dist/generators.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace histest {

Result<Distribution> MakeZipf(size_t n, double s) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (!(s >= 0.0)) return Status::InvalidArgument("s must be >= 0");
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -s);
  }
  return Distribution::FromWeights(std::move(weights));
}

Result<Distribution> MakeGeometric(size_t n, double ratio) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (!(ratio > 0.0) || ratio > 1.0) {
    return Status::InvalidArgument("ratio must be in (0, 1]");
  }
  std::vector<double> weights(n);
  double w = 1.0;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = w;
    w *= ratio;
  }
  return Distribution::FromWeights(std::move(weights));
}

Result<PiecewiseConstant> MakeStaircase(size_t n, size_t k) {
  if (k == 0 || k > n) return Status::InvalidArgument("need 1 <= k <= n");
  const Partition partition = Partition::EquiWidth(n, k);
  std::vector<double> masses(k);
  for (size_t j = 0; j < k; ++j) {
    masses[j] = static_cast<double>(k - j);
  }
  const double total = SumOf(masses);
  for (double& m : masses) m /= total;
  return PiecewiseConstant::FromPartitionMasses(partition, masses);
}

Result<PiecewiseConstant> MakeRandomKHistogram(size_t n, size_t k, Rng& rng,
                                               double mass_alpha) {
  if (k == 0 || k > n) return Status::InvalidArgument("need 1 <= k <= n");
  if (!(mass_alpha > 0.0)) {
    return Status::InvalidArgument("mass_alpha must be positive");
  }
  // Choose k-1 distinct breakpoints from {1, ..., n-1} via a partial
  // Fisher-Yates over candidate cut positions.
  std::vector<size_t> cuts(n - 1);
  for (size_t i = 0; i < n - 1; ++i) cuts[i] = i + 1;
  for (size_t j = 0; j + 1 < k; ++j) {
    const size_t swap_with =
        j + static_cast<size_t>(rng.UniformInt(cuts.size() - j));
    std::swap(cuts[j], cuts[swap_with]);
  }
  std::vector<size_t> ends(cuts.begin(),
                           cuts.begin() + static_cast<ptrdiff_t>(k - 1));
  std::sort(ends.begin(), ends.end());
  ends.push_back(n);
  auto partition = Partition::FromEndpoints(n, std::move(ends));
  HISTEST_CHECK_OK(partition);
  const std::vector<double> masses = rng.DirichletSymmetric(k, mass_alpha);
  return PiecewiseConstant::FromPartitionMasses(partition.value(), masses);
}

Result<Distribution> MakeGaussianMixture(size_t n,
                                         const std::vector<double>& means,
                                         const std::vector<double>& stddevs,
                                         const std::vector<double>& weights) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (means.empty() || means.size() != stddevs.size() ||
      means.size() != weights.size()) {
    return Status::InvalidArgument(
        "means/stddevs/weights must be non-empty and equal-length");
  }
  std::vector<double> pmf(n, 0.0);
  for (size_t c = 0; c < means.size(); ++c) {
    if (!(stddevs[c] > 0.0) || !(weights[c] >= 0.0)) {
      return Status::InvalidArgument("stddevs must be > 0, weights >= 0");
    }
    const double mu = means[c] * static_cast<double>(n);
    const double sigma = stddevs[c] * static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      const double z = (static_cast<double>(i) + 0.5 - mu) / sigma;
      pmf[i] += weights[c] * std::exp(-0.5 * z * z) / sigma;
    }
  }
  return Distribution::FromWeights(std::move(pmf));
}

Result<Distribution> MakeComb(size_t n, size_t teeth, double background_mass) {
  if (n == 0) return Status::InvalidArgument("n must be positive");
  if (teeth == 0 || teeth > n) {
    return Status::InvalidArgument("need 1 <= teeth <= n");
  }
  if (!(background_mass >= 0.0) || background_mass >= 1.0) {
    return Status::InvalidArgument("background_mass must be in [0, 1)");
  }
  std::vector<double> pmf(n, background_mass / static_cast<double>(n));
  const double spike = (1.0 - background_mass) / static_cast<double>(teeth);
  for (size_t t = 0; t < teeth; ++t) {
    // Evenly spaced positions, centered within strides.
    const size_t pos = (2 * t + 1) * n / (2 * teeth);
    pmf[std::min(pos, n - 1)] += spike;
  }
  return Distribution::Create(std::move(pmf));
}

Result<Distribution> MakeSmoothedKModal(size_t n, size_t k, Rng& rng) {
  auto base = MakeRandomKHistogram(n, k, rng);
  HISTEST_RETURN_IF_ERROR(base.status());
  const std::vector<double> dense = base.value().ToDense();
  // Box filter of width ~n/(8k), clamped to >= 1; preserves mode count.
  const size_t width =
      std::max<size_t>(1, n / std::max<size_t>(8 * k, 1));
  std::vector<double> smoothed(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= width ? i - width : 0;
    const size_t hi = std::min(n - 1, i + width);
    KahanSum acc;
    for (size_t j = lo; j <= hi; ++j) acc.Add(dense[j]);
    smoothed[i] = acc.Total() / static_cast<double>(hi - lo + 1);
  }
  return Distribution::FromWeights(std::move(smoothed));
}

}  // namespace histest
