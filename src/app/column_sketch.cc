#include "app/column_sketch.h"

#include "common/check.h"
#include "testing/oracle.h"

namespace histest {

Result<ColumnSketch> ColumnSketch::Build(const std::vector<size_t>& values,
                                         size_t domain) {
  if (domain == 0) return Status::InvalidArgument("domain must be positive");
  if (values.empty()) {
    return Status::InvalidArgument("column must be non-empty");
  }
  for (size_t v : values) {
    if (v >= domain) {
      return Status::OutOfRange("column value " + std::to_string(v) +
                                " outside domain [0, " +
                                std::to_string(domain) + ")");
    }
  }
  CountVector counts = CountVector::FromSamples(domain, values);
  auto dist = counts.ToEmpirical();
  HISTEST_RETURN_IF_ERROR(dist.status());
  return ColumnSketch(std::move(counts), std::move(dist).value());
}

std::unique_ptr<SampleOracle> ColumnSketch::MakeOracle(uint64_t seed) const {
  return std::make_unique<DistributionOracle>(dist_, seed);
}

}  // namespace histest
