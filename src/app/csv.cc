#include "app/csv.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace histest {
namespace {

/// Splits a CSV line into fields (no quoting).
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

Result<CsvColumn> ParseCsvColumn(const std::string& text,
                                 const CsvColumnOptions& options) {
  CsvColumn column;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool skipped_header = !options.has_header;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    const std::vector<std::string> fields = SplitFields(line);
    if (options.column >= fields.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": only " +
          std::to_string(fields.size()) + " fields, need column " +
          std::to_string(options.column));
    }
    const std::string& field = fields[options.column];
    char* end = nullptr;
    const long long v = std::strtoll(field.c_str(), &end, 10);
    if (end == field.c_str() || *end != '\0' || v < 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": not a non-negative integer: '" +
                                     field + "'");
    }
    if (options.domain != 0 && static_cast<size_t>(v) >= options.domain) {
      return Status::OutOfRange("line " + std::to_string(line_no) +
                                ": value " + std::to_string(v) +
                                " outside domain [0, " +
                                std::to_string(options.domain) + ")");
    }
    column.values.push_back(static_cast<size_t>(v));
  }
  if (column.values.empty()) {
    return Status::InvalidArgument("no data rows found");
  }
  column.domain = options.domain != 0
                      ? options.domain
                      : *std::max_element(column.values.begin(),
                                          column.values.end()) +
                            1;
  return column;
}

std::string WriteCsvColumn(const std::string& header,
                           const std::vector<size_t>& values) {
  std::ostringstream out;
  out << header << "\n";
  for (size_t v : values) out << v << "\n";
  return out.str();
}

}  // namespace histest
