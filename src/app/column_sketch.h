#ifndef HISTEST_APP_COLUMN_SKETCH_H_
#define HISTEST_APP_COLUMN_SKETCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "dist/distribution.h"
#include "dist/empirical.h"
#include "testing/tester.h"

namespace histest {

/// Database-flavored entry point: wraps an integer column (values in
/// [0, domain)) as the frequency distribution the paper's testers and
/// learners operate on. This is the "dataset whose underlying distribution
/// we test" from the introduction's motivating use case.
class ColumnSketch {
 public:
  /// Builds from raw column values; every value must be < domain.
  static Result<ColumnSketch> Build(const std::vector<size_t>& values,
                                    size_t domain);

  size_t domain_size() const { return counts_.size(); }
  int64_t row_count() const { return counts_.total(); }

  /// Exact per-value frequencies.
  const CountVector& counts() const { return counts_; }

  /// The column's value distribution (row frequencies normalized).
  const Distribution& distribution() const { return dist_; }

  /// An iid row-sampling oracle over the column — the access model of the
  /// paper (uniform random records of the dataset).
  std::unique_ptr<SampleOracle> MakeOracle(uint64_t seed) const;

 private:
  ColumnSketch(CountVector counts, Distribution dist)
      : counts_(std::move(counts)), dist_(std::move(dist)) {}

  CountVector counts_;
  Distribution dist_;
};

}  // namespace histest

#endif  // HISTEST_APP_COLUMN_SKETCH_H_
