#ifndef HISTEST_APP_CSV_H_
#define HISTEST_APP_CSV_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace histest {

/// Minimal CSV ingestion for the database examples: extracts one integer
/// column from CSV text. Lines are newline-separated; fields are
/// comma-separated with no quoting (values are non-negative integers).
struct CsvColumnOptions {
  /// 0-based column index to extract.
  size_t column = 0;
  /// Skip the first line (header).
  bool has_header = true;
  /// Values must be < domain (0 = derive domain as max value + 1).
  size_t domain = 0;
};

struct CsvColumn {
  std::vector<size_t> values;
  size_t domain = 0;
};

/// Parses `text` and extracts the configured column. Fails on missing
/// columns, non-integer fields, or values outside the configured domain.
Result<CsvColumn> ParseCsvColumn(const std::string& text,
                                 const CsvColumnOptions& options = {});

/// Renders a single-column CSV (with header) from values — the inverse,
/// used by examples to fabricate input files.
std::string WriteCsvColumn(const std::string& header,
                           const std::vector<size_t>& values);

}  // namespace histest

#endif  // HISTEST_APP_CSV_H_
