#include "app/summary.h"

#include <memory>

#include "common/check.h"

namespace histest {

Result<DataSummary> SummarizeColumn(const ColumnSketch& column,
                                    const SummaryOptions& options,
                                    uint64_t seed) {
  if (!(options.eps > 0.0) || options.eps > 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1]");
  }
  auto oracle = column.MakeOracle(seed);
  const HistogramTesterOptions tester_options = options.tester;
  const double eps = options.eps;
  HistogramTesterFactory factory = [eps, tester_options](size_t k,
                                                         uint64_t s) {
    return std::make_unique<HistogramTester>(k, eps, tester_options, s);
  };
  auto selected =
      FindSmallestAcceptedK(*oracle, factory, options.select, seed ^ 0x5eed);
  HISTEST_RETURN_IF_ERROR(selected.status());
  auto learned = LearnKHistogramFromOracle(*oracle, selected.value().k,
                                           options.eps, options.learn_constant);
  HISTEST_RETURN_IF_ERROR(learned.status());
  return DataSummary{std::move(learned).value(), selected.value().k,
                     oracle->SamplesDrawn()};
}

}  // namespace histest
