#ifndef HISTEST_APP_SUMMARY_H_
#define HISTEST_APP_SUMMARY_H_

#include <cstdint>

#include "app/column_sketch.h"
#include "common/status.h"
#include "core/histogram_tester.h"
#include "dist/piecewise.h"
#include "histogram/model_select.h"

namespace histest {

/// Tuning of the end-to-end summarization pipeline (the introduction's
/// motivating application): model selection by doubling search with
/// Algorithm 1 as the subroutine, then agnostic learning with the selected
/// k.
struct SummaryOptions {
  /// Approximation parameter for both testing and learning.
  double eps = 0.25;
  ModelSelectOptions select;
  HistogramTesterOptions tester;
  /// Learner budget constant (m = c * k / eps^2). The learning stage is
  /// cheap next to the testing probes, so the default buys accuracy well
  /// inside eps rather than borderline.
  double learn_constant = 32.0;
};

/// A succinct column summary: the smallest k the tester certified plus the
/// learned k-histogram.
struct DataSummary {
  PiecewiseConstant histogram;
  size_t k_star = 0;
  int64_t samples_used = 0;
};

/// Runs the full pipeline over a column: find the smallest k whose
/// histogram class passes Algorithm 1, then learn a k-histogram summary.
/// Sampling is iid row access throughout — the point of the paper is that
/// this needs o(#rows * domain) work.
Result<DataSummary> SummarizeColumn(const ColumnSketch& column,
                                    const SummaryOptions& options,
                                    uint64_t seed);

}  // namespace histest

#endif  // HISTEST_APP_SUMMARY_H_
