#ifndef HISTEST_APP_RESERVOIR_H_
#define HISTEST_APP_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "testing/tester.h"

namespace histest {

/// Classic reservoir sampling (Algorithm R): maintains a uniform
/// without-replacement sample of capacity c from a stream of unknown
/// length. This is how a massive table becomes the "random samples of the
/// dataset" the paper's access model assumes, in one pass and O(c) memory.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed);

  /// Feeds one stream element (a value in the column's domain).
  void Add(size_t value);

  /// Items consumed from the stream so far.
  int64_t items_seen() const { return seen_; }

  /// The current reservoir (size min(capacity, items_seen)).
  const std::vector<size_t>& sample() const { return reservoir_; }

  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  Rng rng_;
  std::vector<size_t> reservoir_;
  int64_t seen_ = 0;
};

/// Sample oracle backed by a reservoir: hands out the reservoir's rows in
/// a random order *without replacement*. Because the reservoir is a
/// uniform subset of iid stream rows, such draws are themselves iid draws
/// from the stream's distribution — exactly the paper's access model — for
/// up to capacity() draws. Beyond that the oracle wraps around (reshuffled)
/// and records it in wraps(); wrapped draws are no longer independent, so
/// size sample budgets to the reservoir (the distance estimator's
/// O(k/alpha^2) fits easily; Algorithm 1's full budget usually does not).
class ReservoirOracle : public SampleOracle {
 public:
  /// Requires a non-empty reservoir. Copies the current sample.
  ReservoirOracle(const ReservoirSampler& reservoir, size_t domain_size,
                  uint64_t seed);

  size_t DomainSize() const override { return domain_size_; }
  size_t Draw() override;
  int64_t SamplesDrawn() const override { return drawn_; }

  /// Times the reservoir was exhausted and reshuffled.
  int64_t wraps() const { return wraps_; }

 private:
  std::vector<size_t> values_;
  size_t domain_size_;
  Rng rng_;
  size_t cursor_ = 0;
  int64_t drawn_ = 0;
  int64_t wraps_ = 0;
};

}  // namespace histest

#endif  // HISTEST_APP_RESERVOIR_H_
