#include "app/selectivity.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace histest {

SelectivityEstimator::SelectivityEstimator(PiecewiseConstant histogram)
    : histogram_(std::move(histogram)) {}

double SelectivityEstimator::Estimate(const RangeQuery& query) const {
  HISTEST_CHECK_LE(query.lo, query.hi);
  HISTEST_CHECK_LE(query.hi, histogram_.domain_size());
  return histogram_.MassOf(Interval{query.lo, query.hi});
}

double SelectivityEstimator::TrueSelectivity(const Distribution& truth,
                                             const RangeQuery& query) {
  HISTEST_CHECK_LE(query.lo, query.hi);
  HISTEST_CHECK_LE(query.hi, truth.size());
  return truth.MassOf(Interval{query.lo, query.hi});
}

double SelectivityEstimator::MaxAbsError(
    const Distribution& truth, const std::vector<RangeQuery>& queries) const {
  double worst = 0.0;
  for (const RangeQuery& q : queries) {
    worst = std::max(worst,
                     std::fabs(Estimate(q) - TrueSelectivity(truth, q)));
  }
  return worst;
}

std::vector<RangeQuery> MakeQueryGrid(size_t n, size_t queries_per_scale) {
  HISTEST_CHECK_GT(n, 0u);
  HISTEST_CHECK_GT(queries_per_scale, 0u);
  std::vector<RangeQuery> queries;
  // Three scales: ~n/16, ~n/4, ~n/2 wide ranges, evenly spread.
  for (const size_t denom : {size_t{16}, size_t{4}, size_t{2}}) {
    const size_t width = std::max<size_t>(1, n / denom);
    for (size_t q = 0; q < queries_per_scale; ++q) {
      const size_t lo = (n - width) * q / std::max<size_t>(1, queries_per_scale - 1);
      queries.push_back(RangeQuery{lo, std::min(n, lo + width)});
    }
  }
  return queries;
}

}  // namespace histest
