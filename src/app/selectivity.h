#ifndef HISTEST_APP_SELECTIVITY_H_
#define HISTEST_APP_SELECTIVITY_H_

#include <vector>

#include "dist/distribution.h"
#include "dist/interval.h"
#include "dist/piecewise.h"

namespace histest {

/// A half-open range predicate lo <= value < hi over the column domain.
struct RangeQuery {
  size_t lo = 0;
  size_t hi = 0;
};

/// Classical histogram-based selectivity estimation (the database use case
/// motivating the paper): once a k-histogram summary of a column is
/// adequate — which the tester certifies — range-predicate selectivities
/// can be answered from the k-piece summary instead of the data.
class SelectivityEstimator {
 public:
  explicit SelectivityEstimator(PiecewiseConstant histogram);

  /// Estimated fraction of rows matching the query.
  double Estimate(const RangeQuery& query) const;

  /// Ground truth under the exact column distribution.
  static double TrueSelectivity(const Distribution& truth,
                                const RangeQuery& query);

  /// Maximum absolute selectivity error over a query set.
  double MaxAbsError(const Distribution& truth,
                     const std::vector<RangeQuery>& queries) const;

  const PiecewiseConstant& histogram() const { return histogram_; }

 private:
  PiecewiseConstant histogram_;
};

/// Generates a deterministic grid of range queries covering short, medium,
/// and long ranges over [0, n) (for evaluation and examples).
std::vector<RangeQuery> MakeQueryGrid(size_t n, size_t queries_per_scale);

}  // namespace histest

#endif  // HISTEST_APP_SELECTIVITY_H_
