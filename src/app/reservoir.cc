#include "app/reservoir.h"

#include "common/check.h"

namespace histest {

ReservoirSampler::ReservoirSampler(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  HISTEST_CHECK_GT(capacity_, 0u);
  reservoir_.reserve(capacity_);
}

void ReservoirSampler::Add(size_t value) {
  ++seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(value);
    return;
  }
  // Replace a uniform slot with probability capacity / seen.
  const uint64_t j = rng_.UniformInt(static_cast<uint64_t>(seen_));
  if (j < capacity_) reservoir_[j] = value;
}

ReservoirOracle::ReservoirOracle(const ReservoirSampler& reservoir,
                                 size_t domain_size, uint64_t seed)
    : values_(reservoir.sample()), domain_size_(domain_size), rng_(seed) {
  HISTEST_CHECK(!values_.empty());
  for (size_t v : values_) HISTEST_CHECK_LT(v, domain_size_);
  rng_.Shuffle(values_);
}

size_t ReservoirOracle::Draw() {
  ++drawn_;
  if (cursor_ == values_.size()) {
    cursor_ = 0;
    ++wraps_;
    rng_.Shuffle(values_);
  }
  return values_[cursor_++];
}

}  // namespace histest
