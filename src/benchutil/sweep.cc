#include "benchutil/sweep.h"

#include <cmath>
#include <memory>

#include "benchutil/parallel.h"
#include "common/check.h"
#include "common/rng.h"
#include "dist/sampler.h"
#include "testing/oracle.h"

namespace histest {

Result<TrialStats> EstimateAcceptance(const SeededTesterFactory& factory,
                                      const Distribution& dist, int trials,
                                      uint64_t seed) {
  if (trials < 1) return Status::InvalidArgument("trials must be >= 1");
  Rng rng(seed);
  // One immutable alias table serves every trial (bit-identical streams to
  // per-trial construction, without the per-trial O(n) build).
  const auto sampler = std::make_shared<const AliasSampler>(dist);
  int accepts = 0;
  double total_samples = 0.0;
  for (int t = 0; t < trials; ++t) {
    DistributionOracle oracle(sampler, rng.Next());
    auto tester = factory(rng.Next());
    HISTEST_CHECK(tester != nullptr);
    auto outcome = tester->Test(oracle);
    HISTEST_RETURN_IF_ERROR(outcome.status());
    if (outcome.value().verdict == Verdict::kAccept) ++accepts;
    total_samples += static_cast<double>(outcome.value().samples_used);
  }
  TrialStats stats;
  stats.trials = trials;
  stats.accept_rate = static_cast<double>(accepts) / trials;
  stats.avg_samples = total_samples / trials;
  return stats;
}

namespace {

/// Checks correctness of the tester at a given scale over all instances;
/// also accumulates the mean sample count.
Result<bool> CorrectAtScale(const ScaledTesterFactory& factory, double scale,
                            const std::vector<Distribution>& yes,
                            const std::vector<Distribution>& no,
                            const MinimalBudgetOptions& options, Rng& rng,
                            double* avg_samples) {
  double total_samples = 0.0;
  int total_runs = 0;
  bool correct = true;
  auto run_side = [&](const std::vector<Distribution>& dists,
                      bool expect_accept) -> Status {
    for (const Distribution& dist : dists) {
      const uint64_t seed = rng.Next();
      auto stats = EstimateAcceptanceParallel(
          [&](uint64_t s) { return factory(scale, s); }, dist,
          options.trials_per_instance, seed, options.threads);
      HISTEST_RETURN_IF_ERROR(stats.status());
      total_samples += stats.value().avg_samples * stats.value().trials;
      total_runs += stats.value().trials;
      const double rate = expect_accept
                              ? stats.value().accept_rate
                              : 1.0 - stats.value().accept_rate;
      if (rate < options.target_rate) correct = false;
    }
    return Status::Ok();
  };
  HISTEST_RETURN_IF_ERROR(run_side(yes, true));
  HISTEST_RETURN_IF_ERROR(run_side(no, false));
  if (avg_samples != nullptr && total_runs > 0) {
    *avg_samples = total_samples / total_runs;
  }
  return correct;
}

}  // namespace

Result<MinimalBudgetResult> FindMinimalBudget(
    const ScaledTesterFactory& factory, const std::vector<Distribution>& yes,
    const std::vector<Distribution>& no, const MinimalBudgetOptions& options,
    uint64_t seed) {
  if (yes.empty() && no.empty()) {
    return Status::InvalidArgument("need at least one instance");
  }
  if (!(options.scale_lo > 0.0) || options.scale_lo >= options.scale_hi) {
    return Status::InvalidArgument("need 0 < scale_lo < scale_hi");
  }
  Rng rng(seed);
  MinimalBudgetResult result;

  // First make sure the upper end works at all.
  double hi = options.scale_hi;
  double hi_samples = 0.0;
  auto hi_ok = CorrectAtScale(factory, hi, yes, no, options, rng, &hi_samples);
  HISTEST_RETURN_IF_ERROR(hi_ok.status());
  if (!hi_ok.value()) {
    result.found = false;
    return result;
  }
  result.found = true;
  result.scale = hi;
  result.avg_samples = hi_samples;

  double lo = options.scale_lo;
  for (int step = 0; step < options.bisection_steps; ++step) {
    const double mid = std::sqrt(lo * hi);  // geometric midpoint
    double mid_samples = 0.0;
    auto ok = CorrectAtScale(factory, mid, yes, no, options, rng,
                             &mid_samples);
    HISTEST_RETURN_IF_ERROR(ok.status());
    if (ok.value()) {
      hi = mid;
      result.scale = mid;
      result.avg_samples = mid_samples;
    } else {
      lo = mid;
    }
  }
  return result;
}

}  // namespace histest
