#ifndef HISTEST_BENCHUTIL_SWEEP_H_
#define HISTEST_BENCHUTIL_SWEEP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "dist/distribution.h"
#include "testing/tester.h"

namespace histest {

/// Factory producing a fresh tester (fresh internal randomness per seed).
using SeededTesterFactory =
    std::function<std::unique_ptr<DistributionTester>(uint64_t seed)>;

/// Factory parameterized additionally by a multiplicative sample-budget
/// scale — the knob the minimal-budget search varies.
using ScaledTesterFactory = std::function<std::unique_ptr<DistributionTester>(
    double scale, uint64_t seed)>;

/// Monte-Carlo estimate of a tester's acceptance behaviour on one
/// distribution.
struct TrialStats {
  double accept_rate = 0.0;
  double avg_samples = 0.0;
  int trials = 0;
};

/// Runs `trials` independent tester runs against iid sample oracles for
/// `dist` and reports the acceptance rate and mean sample count.
Result<TrialStats> EstimateAcceptance(const SeededTesterFactory& factory,
                                      const Distribution& dist, int trials,
                                      uint64_t seed);

/// Result of the minimal-budget search.
struct MinimalBudgetResult {
  /// Smallest scale (on the searched geometric grid) at which the tester
  /// was simultaneously correct on every yes and no instance.
  double scale = 0.0;
  /// Mean samples per run at that scale (averaged over all instances).
  double avg_samples = 0.0;
  bool found = false;
};

struct MinimalBudgetOptions {
  /// Correctness requirement per instance (accept rate on yes instances,
  /// reject rate on no instances).
  double target_rate = 2.0 / 3.0;
  int trials_per_instance = 9;
  double scale_lo = 1e-3;
  double scale_hi = 4.0;
  /// Geometric bisection steps (resolution ~ (hi/lo)^(1/2^steps)).
  int bisection_steps = 7;
  /// Worker threads for the per-instance trials (1 = serial; results are
  /// bit-identical either way).
  int threads = 1;
};

/// Empirical sample complexity: geometric bisection over the budget scale
/// for the smallest scale at which the tester meets the correctness target
/// on every provided instance. This is how the experiment harness turns
/// "tester X needs fewer samples than tester Y" into measured numbers.
Result<MinimalBudgetResult> FindMinimalBudget(
    const ScaledTesterFactory& factory, const std::vector<Distribution>& yes,
    const std::vector<Distribution>& no, const MinimalBudgetOptions& options,
    uint64_t seed);

}  // namespace histest

#endif  // HISTEST_BENCHUTIL_SWEEP_H_
