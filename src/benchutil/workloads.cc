#include "benchutil/workloads.h"

#include <algorithm>

#include "common/check.h"
#include "dist/generators.h"
#include "dist/perturb.h"
#include "dist/piecewise.h"
#include "histogram/distance_to_hk.h"
#include "lowerbound/paninski_family.h"

namespace histest {
namespace {

/// Certifies a candidate far instance via the offline DP; returns true and
/// fills the certificate when the lower bound clears eps.
bool CertifyFar(const Distribution& dist, size_t k, double eps,
                double* certificate) {
  auto bounds = DistanceToHk(dist, k);
  if (!bounds.ok()) return false;
  if (bounds.value().lower < eps) return false;
  *certificate = bounds.value().lower;
  return true;
}

}  // namespace

Result<std::vector<WorkloadInstance>> MakeWorkloadGrid(size_t n, size_t k,
                                                       double eps, Rng& rng) {
  if (n < 8 || n % 2 != 0) {
    return Status::InvalidArgument("n must be even and >= 8");
  }
  if (k == 0 || k > n / 4) {
    return Status::InvalidArgument("need 1 <= k <= n/4");
  }
  if (!(eps > 0.0) || eps > 0.45) {
    return Status::InvalidArgument("eps must be in (0, 0.45]");
  }
  std::vector<WorkloadInstance> grid;

  // --- In-class instances. ---
  grid.push_back(WorkloadInstance{"uniform", Distribution::UniformOver(n),
                                  InstanceSide::kInClass, 0.0});
  auto staircase = MakeStaircase(n, k);
  HISTEST_RETURN_IF_ERROR(staircase.status());
  {
    auto dist = staircase.value().ToDistribution();
    HISTEST_RETURN_IF_ERROR(dist.status());
    grid.push_back(WorkloadInstance{"staircase-k", std::move(dist).value(),
                                    InstanceSide::kInClass, 0.0});
  }
  for (int variant = 0; variant < 2; ++variant) {
    auto random_hist = MakeRandomKHistogram(n, k, rng);
    HISTEST_RETURN_IF_ERROR(random_hist.status());
    auto dist = random_hist.value().ToDistribution();
    HISTEST_RETURN_IF_ERROR(dist.status());
    grid.push_back(WorkloadInstance{
        "random-khist-" + std::to_string(variant + 1),
        std::move(dist).value(), InstanceSide::kInClass, 0.0});
  }
  if (k >= 3) {
    // One heavy element on a flat background: a 3-piece histogram.
    std::vector<double> pmf(n, 0.5 / static_cast<double>(n - 1));
    pmf[n / 2] = 0.5;
    auto dist = Distribution::FromWeights(std::move(pmf));
    HISTEST_RETURN_IF_ERROR(dist.status());
    grid.push_back(WorkloadInstance{"heavy+flat", std::move(dist).value(),
                                    InstanceSide::kInClass, 0.0});
  }

  // --- Far instances. ---
  {
    // Paninski member: amplitude c chosen so the analytic certificate
    // clears eps with margin.
    const double c = std::min(1.0 / eps, 2.5);
    auto instance = MakePaninskiInstance(n, eps, c, k, rng);
    HISTEST_RETURN_IF_ERROR(instance.status());
    if (instance.value().certified_far_from_hk < eps) {
      return Status::FailedPrecondition(
          "Paninski certificate below eps; parameter grid too aggressive");
    }
    grid.push_back(WorkloadInstance{"paninski-far",
                                    std::move(instance.value().dist),
                                    InstanceSide::kFar,
                                    instance.value().certified_far_from_hk});
  }
  {
    auto far = MakeFarFromHk(staircase.value(), k, eps, rng);
    HISTEST_RETURN_IF_ERROR(far.status());
    grid.push_back(WorkloadInstance{"staircase-perturbed-far",
                                    std::move(far.value().dist),
                                    InstanceSide::kFar,
                                    far.value().certified_tv_lower_bound});
  }
  {
    auto comb = MakeComb(n, std::min(4 * k, n / 2), 0.2);
    HISTEST_RETURN_IF_ERROR(comb.status());
    double certificate = 0.0;
    if (CertifyFar(comb.value(), k, eps, &certificate)) {
      grid.push_back(WorkloadInstance{"comb-far", std::move(comb).value(),
                                      InstanceSide::kFar, certificate});
    }
  }
  {
    auto mixture = MakeGaussianMixture(n, {0.25, 0.6, 0.85},
                                       {0.05, 0.08, 0.03}, {0.4, 0.4, 0.2});
    HISTEST_RETURN_IF_ERROR(mixture.status());
    double certificate = 0.0;
    if (CertifyFar(mixture.value(), k, eps, &certificate)) {
      grid.push_back(WorkloadInstance{"gaussian-mixture-far",
                                      std::move(mixture).value(),
                                      InstanceSide::kFar, certificate});
    }
  }
  return grid;
}

}  // namespace histest
