#ifndef HISTEST_BENCHUTIL_WORKLOADS_H_
#define HISTEST_BENCHUTIL_WORKLOADS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dist/distribution.h"

namespace histest {

/// Which side of the testing promise an instance lies on.
enum class InstanceSide {
  kInClass,  // a member of H_k: the tester must accept (w.p. >= 2/3)
  kFar,      // certified eps-far from H_k: the tester must reject
};

/// A named benchmark instance with its ground truth.
struct WorkloadInstance {
  std::string name;
  Distribution dist;
  InstanceSide side = InstanceSide::kInClass;
  /// For kFar instances: a certified lower bound on d_TV(dist, H_k)
  /// (analytic where available, otherwise from the exact DP). Zero for
  /// in-class instances.
  double certified_distance = 0.0;
};

/// Builds the standard instance grid for (n, k, eps) used by the
/// correctness and comparison experiments:
///   in-class: uniform, staircase-k, two random k-histograms, heavy+flat;
///   far:      Paninski-perturbed uniform, perturbed staircase, a 4k-tooth
///             comb, and (when it certifies as far) a Gaussian mixture.
/// Every far instance carries certified_distance >= eps. Requires n even,
/// k <= n/4, eps in (0, 0.45].
Result<std::vector<WorkloadInstance>> MakeWorkloadGrid(size_t n, size_t k,
                                                       double eps, Rng& rng);

}  // namespace histest

#endif  // HISTEST_BENCHUTIL_WORKLOADS_H_
