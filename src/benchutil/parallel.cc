#include "benchutil/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>

#include "common/arena.h"
#include "common/check.h"
#include "common/cli.h"
#include "common/rng.h"
#include "dist/sampler.h"
#include "obs/obs.h"
#include "obs/names.h"
#include "testing/oracle.h"

namespace histest {

/// One parallel region. Chunks are handed out through an atomic cursor;
/// completion is tracked per chunk under the pool mutex so the submitting
/// thread can sleep until the last in-flight chunk retires.
///
/// chunks_done and workers_allowed are guarded by the owning pool's mu_
/// (not expressible as a HISTEST_GUARDED_BY attribute from a nested struct;
/// every access below sits inside a MutexLock(mu_) scope).
struct ThreadPool::Task {
  int64_t count = 0;
  int64_t chunk = 1;
  int64_t chunks_total = 0;
  const std::function<void(int64_t)>* job = nullptr;
  std::atomic<int64_t> next{0};
  int64_t chunks_done = 0;   // guarded by ThreadPool::mu_
  int workers_allowed = 0;   // remaining pool-worker slots, guarded by mu_
  CondVar done;

  bool HasWork() const { return next.load(std::memory_order_relaxed) < count; }
};

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<Task> task;
    {
      MutexLock lock(mu_);
      while (true) {
        for (auto& t : queue_) {
          if (t->workers_allowed > 0 && t->HasWork()) {
            task = t;
            break;
          }
        }
        if (task != nullptr) {
          --task->workers_allowed;
          break;
        }
        if (stop_) return;
        work_cv_.Wait(mu_);
      }
    }
    RunChunks(*task);
  }
}

void ThreadPool::RunChunks(Task& task) {
  int64_t finished = 0;
  while (true) {
    const int64_t start =
        task.next.fetch_add(task.chunk, std::memory_order_relaxed);
    if (start >= task.count) break;
    const int64_t end = std::min(start + task.chunk, task.count);
    for (int64_t i = start; i < end; ++i) (*task.job)(i);
    ++finished;
  }
  if (finished == 0) return;
  MutexLock lock(mu_);
  task.chunks_done += finished;
  HISTEST_DCHECK_LE(task.chunks_done, task.chunks_total);
  if (task.chunks_done == task.chunks_total) task.done.NotifyAll();
}

void ThreadPool::Run(int64_t count, int max_workers,
                     const std::function<void(int64_t)>& job) {
  HISTEST_CHECK_GE(count, 0);
  if (count == 0) return;
  obs::ScopedTimer run_timer(obs::names::kPoolRunSeconds);
  obs::AddCount(obs::names::kPoolRuns, 1);
  obs::AddCount(obs::names::kPoolJobs, count);
  auto task = std::make_shared<Task>();
  task->count = count;
  task->job = &job;
  const int helpers = std::max(
      0, std::min(max_workers, static_cast<int>(workers_.size())));
  task->workers_allowed = helpers;
  // ~4 chunks per executor balances scheduling overhead against stragglers.
  task->chunk = std::max<int64_t>(1, count / ((helpers + 1) * 4));
  task->chunks_total = (count + task->chunk - 1) / task->chunk;
  HISTEST_DCHECK_GE(task->chunks_total, 1);
  {
    MutexLock lock(mu_);
    queue_.push_back(task);
    obs::SetGauge(obs::names::kPoolQueueDepth,
                  static_cast<int64_t>(queue_.size()));
  }
  if (helpers > 0) work_cv_.NotifyAll();
  RunChunks(*task);
  MutexLock lock(mu_);
  // The predicate runs with mu_ held (CondVar::Wait's contract); the Task
  // fields it reads are mu_-guarded by convention (see Task's comment).
  task->done.Wait(mu_,
                  [&]() { return task->chunks_done == task->chunks_total; });
  queue_.erase(std::find(queue_.begin(), queue_.end(), task));
  obs::SetGauge(obs::names::kPoolQueueDepth,
                static_cast<int64_t>(queue_.size()));
}

int ThreadPool::SharedPlannedWorkers() {
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  // Workers + the calling thread should cover the largest sensible
  // request, including an oversized HISTEST_THREADS override.
  return std::max(1, std::max(hw, DefaultBenchThreads()) - 1);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(SharedPlannedWorkers());
  // The resolved size is observable through the gauge and the run manifest
  // (pool_workers field); deliberately no stderr announcement, so the obs
  // layer is the single channel for sizing provenance.
  obs::SetGauge(obs::names::kPoolWorkers, pool.size());
  return pool;
}

void ParallelFor(int64_t count, int threads,
                 const std::function<void(int64_t)>& job) {
  HISTEST_CHECK_GE(count, 0);
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (int64_t i = 0; i < count; ++i) job(i);
    return;
  }
  ThreadPool::Shared().Run(count, threads - 1, job);
}

int DefaultBenchThreads() {
  // Anything other than a clean integer in [1, 65536] — trailing garbage
  // ("4x"), overflow, empty strings — is rejected rather than clamped.
  const EnvValue<int64_t> env =
      ParseEnvInt("HISTEST_THREADS", 1, 1 << 16, -1);
  if (env.present && env.valid) {
    return static_cast<int>(env.value);  // explicit override: no cap
  }
  if (env.present && !env.raw.empty() &&
      ShouldWarnOnceForEnv("HISTEST_THREADS", env.raw)) {
    // Warn once per distinct bad value, not once per call: the harness
    // calls this in loops, but a changed-yet-still-bad setting (common in
    // CI matrix edits) should also be surfaced. The dedup registry lives
    // in common/cli behind an annotated mutex, so racing first readers
    // elect exactly one warner.
    std::fprintf(stderr,
                 "histest: ignoring HISTEST_THREADS='%s' (%s); "
                 "falling back to min(8, hardware_concurrency)\n",
                 env.raw.c_str(), env.error.c_str());
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return static_cast<int>(std::min(8u, hw));
}

Result<TrialStats> EstimateAcceptanceParallel(
    const SeededTesterFactory& factory, const Distribution& dist, int trials,
    uint64_t seed, int threads) {
  if (trials < 1) return Status::InvalidArgument("trials must be >= 1");
  // Precompute per-trial seeds sequentially for determinism.
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> seeds(
      static_cast<size_t>(trials));
  for (auto& s : seeds) {
    s.first = rng.Next();
    s.second = rng.Next();
  }
  // All trials share one immutable alias table; per-trial state is just the
  // seeded Rng stream inside each oracle.
  const auto sampler = std::make_shared<const AliasSampler>(dist);
  std::vector<int> accepted(static_cast<size_t>(trials), 0);
  std::vector<double> samples(static_cast<size_t>(trials), 0.0);
  std::vector<Status> statuses(static_cast<size_t>(trials), Status::Ok());
  std::atomic<bool> failed{false};
  ParallelFor(trials, threads, [&](int64_t t) {
    if (failed.load(std::memory_order_relaxed)) return;
    // Each trial is a span of its own: spans nest per thread, so a worker's
    // histogram_test subtree hangs under its trial regardless of which pool
    // thread ran it.
    obs::TraceSpan trial_span(obs::names::kSpanTrial);
    trial_span.AnnotateInt("index", t);
    // Trial-scoped arena window: scratch carved by the tester below is
    // reclaimed wholesale on scope exit, and the retained chunks make every
    // trial after this worker's first allocation-free on the scratch path.
    ScratchArena& arena = ScratchArena::ThreadLocal();
    const ScratchArena::Scope trial_scope(arena);
    DistributionOracle oracle(sampler, seeds[t].first);
    auto tester = factory(seeds[t].second);
    if (tester == nullptr) {
      statuses[t] = Status::InvalidArgument("factory returned a null tester");
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    auto outcome = tester->Test(oracle);
    if (!outcome.ok()) {
      statuses[t] = outcome.status();
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    accepted[t] = outcome.value().verdict == Verdict::kAccept ? 1 : 0;
    samples[t] = static_cast<double>(outcome.value().samples_used);
    trial_span.AnnotateString(
        "verdict", VerdictToString(outcome.value().verdict));
    trial_span.AnnotateInt("samples_used", outcome.value().samples_used);
    obs::SetGauge(obs::names::kTrialArenaBytes,
                  static_cast<int64_t>(arena.bytes_reserved()));
    obs::AddCount(obs::names::kTrialsRun, 1);
  });
  if (failed.load()) {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;  // lowest-index trial failure
    }
    return Status::Internal("a parallel trial failed without a status");
  }
  TrialStats stats;
  stats.trials = trials;
  int accepts = 0;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    accepts += accepted[t];
    total += samples[t];
  }
  stats.accept_rate = static_cast<double>(accepts) / trials;
  stats.avg_samples = total / trials;
  return stats;
}

}  // namespace histest
