#include "benchutil/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "testing/oracle.h"

namespace histest {

void ParallelFor(int64_t count, int threads,
                 const std::function<void(int64_t)>& job) {
  HISTEST_CHECK_GE(count, 0);
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (int64_t i = 0; i < count; ++i) job(i);
    return;
  }
  const int workers =
      static_cast<int>(std::min<int64_t>(threads, count));
  std::atomic<int64_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&]() {
      while (true) {
        const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        job(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

int DefaultBenchThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return static_cast<int>(std::min(8u, hw));
}

Result<TrialStats> EstimateAcceptanceParallel(
    const SeededTesterFactory& factory, const Distribution& dist, int trials,
    uint64_t seed, int threads) {
  if (trials < 1) return Status::InvalidArgument("trials must be >= 1");
  // Precompute per-trial seeds sequentially for determinism.
  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> seeds(
      static_cast<size_t>(trials));
  for (auto& s : seeds) {
    s.first = rng.Next();
    s.second = rng.Next();
  }
  std::vector<int> accepted(static_cast<size_t>(trials), 0);
  std::vector<double> samples(static_cast<size_t>(trials), 0.0);
  std::atomic<bool> failed{false};
  ParallelFor(trials, threads, [&](int64_t t) {
    if (failed.load(std::memory_order_relaxed)) return;
    DistributionOracle oracle(dist, seeds[t].first);
    auto tester = factory(seeds[t].second);
    if (tester == nullptr) {
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    auto outcome = tester->Test(oracle);
    if (!outcome.ok()) {
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    accepted[t] = outcome.value().verdict == Verdict::kAccept ? 1 : 0;
    samples[t] = static_cast<double>(outcome.value().samples_used);
  });
  if (failed.load()) {
    return Status::Internal("a parallel trial failed; rerun serially via "
                            "EstimateAcceptance for the exact status");
  }
  TrialStats stats;
  stats.trials = trials;
  int accepts = 0;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    accepts += accepted[t];
    total += samples[t];
  }
  stats.accept_rate = static_cast<double>(accepts) / trials;
  stats.avg_samples = total / trials;
  return stats;
}

}  // namespace histest
