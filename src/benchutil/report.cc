#include "benchutil/report.h"

#include <cstdio>

namespace histest {

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& reproduces) {
  std::printf("=== %s: %s ===\n", id.c_str(), title.c_str());
  std::printf("reproduces: %s\n\n", reproduces.c_str());
  std::fflush(stdout);
}

void PrintResultTable(const Table& table) {
  std::fputs(table.ToText().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fflush(stdout);
}

void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
  std::fflush(stdout);
}

TraceRunGuard::TraceRunGuard(const std::string& id, bool enable,
                             const std::string& out_path)
    : out_path_(out_path), was_enabled_(obs::Enabled()) {
  const bool env_enable = obs::InitFromEnv();
  if (!enable && !env_enable && !was_enabled_) return;
  obs::SetEnabled(true);
  session_ = std::make_unique<obs::TraceSession>(
      id, obs::MonotonicClock::Get());
  activation_ =
      std::make_unique<obs::ScopedTraceActivation>(session_.get());
}

TraceRunGuard::~TraceRunGuard() {
  if (session_ == nullptr) return;
  activation_.reset();  // deactivate before the session is torn down
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::Global().Snapshot();
  const Status status = session_->WriteJsonlFile(out_path_, &metrics);
  if (status.ok()) {
    std::fprintf(stderr, "histest: trace: wrote %zu spans to %s\n",
                 session_->NumSpans(), out_path_.c_str());
  } else {
    std::fprintf(stderr, "histest: trace: %s\n",
                 status.ToString().c_str());
  }
  obs::SetEnabled(was_enabled_);
}

}  // namespace histest
