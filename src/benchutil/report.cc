#include "benchutil/report.h"

#include <cstdio>

namespace histest {

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& reproduces) {
  std::printf("=== %s: %s ===\n", id.c_str(), title.c_str());
  std::printf("reproduces: %s\n\n", reproduces.c_str());
  std::fflush(stdout);
}

void PrintResultTable(const Table& table) {
  std::fputs(table.ToText().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fflush(stdout);
}

void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
  std::fflush(stdout);
}

}  // namespace histest
