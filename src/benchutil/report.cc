#include "benchutil/report.h"

#include <cstdio>
#include <utility>

#include "common/cli.h"

namespace histest {

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& reproduces) {
  std::printf("=== %s: %s ===\n", id.c_str(), title.c_str());
  std::printf("reproduces: %s\n\n", reproduces.c_str());
  std::fflush(stdout);
}

void PrintResultTable(const Table& table) {
  std::fputs(table.ToText().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fflush(stdout);
}

void PrintNote(const std::string& note) {
  std::printf("note: %s\n", note.c_str());
  std::fflush(stdout);
}

TraceRunGuard::TraceRunGuard(
    const std::string& id, bool enable, const std::string& out_path,
    std::vector<std::pair<std::string, std::string>> params)
    : out_path_(out_path), was_enabled_(obs::Enabled()) {
  // Post-mortem and live-metrics plumbing run independently of tracing:
  // the recorder and publisher have their own env gates, so a daemon-style
  // run can keep them on with span collection off.
  obs::FlightRecorder::InitFromEnv();
  const EnvValue<std::string> metrics_out =
      ParseEnvString("HISTEST_METRICS_OUT", "");
  if (metrics_out.present && !metrics_out.value.empty()) {
    const EnvValue<int64_t> interval =
        ParseEnvInt("HISTEST_METRICS_INTERVAL_MS", 1, 3600000, 1000);
    obs::MetricsPublisher::Options opts;
    opts.interval_ms = interval.valid ? interval.value : 1000;
    opts.jsonl_path = metrics_out.value;
    opts.openmetrics_path = metrics_out.value + ".om";
    publisher_ = std::make_unique<obs::MetricsPublisher>(std::move(opts));
    const Status pub_status = publisher_->Start();
    if (!pub_status.ok()) {
      std::fprintf(stderr, "histest: metrics publisher: %s\n",
                   pub_status.ToString().c_str());
      publisher_.reset();
    }
  }
  const bool env_enable = obs::InitFromEnv();
  if (!enable && !env_enable && !was_enabled_) return;
  obs::SetEnabled(true);
  session_ = std::make_unique<obs::TraceSession>(
      id, obs::MonotonicClock::Get());
  obs::RunManifest manifest = obs::CurrentRunManifest();
  manifest.AddParam("experiment", id);
  for (auto& [key, value] : params) {
    manifest.AddParam(std::move(key), std::move(value));
  }
  session_->SetManifestJson(manifest.ToJson());
  activation_ =
      std::make_unique<obs::ScopedTraceActivation>(session_.get());
}

TraceRunGuard::~TraceRunGuard() {
  if (publisher_ != nullptr) {
    publisher_->Stop();
    std::fprintf(stderr,
                 "histest: metrics: wrote %lld snapshots (publisher)\n",
                 static_cast<long long>(publisher_->SnapshotCount()));
  }
  if (obs::FlightRecorder::Enabled()) {
    const EnvValue<std::string> dump_path = ParseEnvString(
        "HISTEST_FLIGHT_RECORDER_OUT", "histest_flight_recorder.jsonl");
    const Status dump_status =
        obs::FlightRecorder::DumpNow(dump_path.value, "run_guard_exit");
    if (dump_status.ok()) {
      std::fprintf(stderr, "histest: flight recorder: dumped to %s\n",
                   dump_path.value.c_str());
    } else {
      std::fprintf(stderr, "histest: flight recorder: %s\n",
                   dump_status.ToString().c_str());
    }
  }
  if (session_ == nullptr) return;
  activation_.reset();  // deactivate before the session is torn down
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::Global().Snapshot();
  const Status status = session_->WriteJsonlFile(out_path_, &metrics);
  if (status.ok()) {
    std::fprintf(stderr, "histest: trace: wrote %zu spans to %s\n",
                 session_->NumSpans(), out_path_.c_str());
  } else {
    std::fprintf(stderr, "histest: trace: %s\n",
                 status.ToString().c_str());
  }
  obs::SetEnabled(was_enabled_);
}

}  // namespace histest
