#ifndef HISTEST_BENCHUTIL_PARALLEL_H_
#define HISTEST_BENCHUTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "benchutil/sweep.h"

namespace histest {

/// Runs `count` index-addressed jobs on up to `threads` worker threads
/// (threads <= 1 runs inline). Jobs must be independent; the caller owns
/// any synchronization of shared outputs (per-index output slots need
/// none).
void ParallelFor(int64_t count, int threads,
                 const std::function<void(int64_t)>& job);

/// Number of worker threads the experiment harness uses by default:
/// min(8, hardware_concurrency), at least 1.
int DefaultBenchThreads();

/// Parallel version of EstimateAcceptance: trial seeds are precomputed
/// sequentially from `seed`, so the result is bit-identical to the serial
/// version regardless of scheduling.
Result<TrialStats> EstimateAcceptanceParallel(
    const SeededTesterFactory& factory, const Distribution& dist, int trials,
    uint64_t seed, int threads);

}  // namespace histest

#endif  // HISTEST_BENCHUTIL_PARALLEL_H_
