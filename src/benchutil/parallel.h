#ifndef HISTEST_BENCHUTIL_PARALLEL_H_
#define HISTEST_BENCHUTIL_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "benchutil/sweep.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace histest {

/// Persistent work-queue thread pool. Workers are spawned once and reused
/// across calls, so repeated small parallel regions (the trial harness's
/// bread and butter) pay no thread-creation cost.
///
/// Run() hands out contiguous index chunks to at most `max_workers` pool
/// workers while the calling thread also participates, and returns when
/// every job has finished. Jobs must be independent and must not throw.
/// Concurrent Run() calls from different threads are safe; a Run() issued
/// from inside a job also works (the caller drains its own task, so there
/// is no deadlock), though all tasks share the same workers.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Runs `count` index-addressed jobs, using up to `max_workers` pool
  /// workers in addition to the calling thread. Blocks until all are done.
  void Run(int64_t count, int max_workers,
           const std::function<void(int64_t)>& job);

  /// The process-wide pool used by ParallelFor. Sized so that the caller
  /// plus the workers cover max(hardware_concurrency, DefaultBenchThreads())
  /// executors; created on first use.
  static ThreadPool& Shared();

  /// The worker count Shared() uses (or would use): the sizing formula is
  /// pure, so provenance consumers (RunManifest's pool_workers field) can
  /// report it without forcing pool construction. The resolved size is also
  /// published as the histest.pool.workers gauge — there is no stderr
  /// announcement; the manifest is the canonical record.
  static int SharedPlannedWorkers();

 private:
  struct Task;

  void WorkerLoop();
  void RunChunks(Task& task) HISTEST_EXCLUDES(mu_);

  /// Guards the work queue and the shutdown flag; also serializes each
  /// Task's completion bookkeeping (chunks_done / workers_allowed), which
  /// lives in the Task but is only ever touched with mu_ held.
  Mutex mu_;
  CondVar work_cv_;
  std::vector<std::shared_ptr<Task>> queue_ HISTEST_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  bool stop_ HISTEST_GUARDED_BY(mu_) = false;
};

/// Runs `count` index-addressed jobs on up to `threads` concurrent
/// executors (threads <= 1 runs inline) via the shared persistent pool.
/// Jobs must be independent; the caller owns any synchronization of shared
/// outputs (per-index output slots need none).
void ParallelFor(int64_t count, int threads,
                 const std::function<void(int64_t)>& job);

/// Number of worker threads the experiment harness uses by default. A
/// HISTEST_THREADS environment override (an integer >= 1) is honored
/// verbatim; without it the default is min(8, hardware_concurrency), at
/// least 1.
int DefaultBenchThreads();

/// Parallel version of EstimateAcceptance: trial seeds are precomputed
/// sequentially from `seed` and all trials share one immutable sampler
/// table, so the result is bit-identical to the serial version regardless
/// of scheduling or thread count.
Result<TrialStats> EstimateAcceptanceParallel(
    const SeededTesterFactory& factory, const Distribution& dist, int trials,
    uint64_t seed, int threads);

}  // namespace histest

#endif  // HISTEST_BENCHUTIL_PARALLEL_H_
