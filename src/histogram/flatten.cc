#include "histogram/flatten.h"

#include <algorithm>

#include "common/check.h"
#include "common/kernels.h"

namespace histest {

Distribution FlattenOutside(const Distribution& d, const Partition& partition,
                            const std::vector<size_t>& keep_exact) {
  HISTEST_CHECK_EQ(d.size(), partition.domain_size());
  std::vector<bool> keep(partition.NumIntervals(), false);
  for (size_t j : keep_exact) {
    HISTEST_CHECK_LT(j, partition.NumIntervals());
    keep[j] = true;
  }
  // O(1) interval masses from the shared prefix index (built once per
  // distribution, reused across trials) instead of a raw summation loop
  // per interval.
  const PrefixMassIndex& index = d.PrefixIndex();
  std::vector<double> pmf(d.size());
  for (size_t j = 0; j < partition.NumIntervals(); ++j) {
    const Interval& iv = partition.interval(j);
    if (keep[j]) {
      for (size_t i = iv.begin; i < iv.end; ++i) pmf[i] = d[i];
    } else {
      const double avg = index.MassOf(iv) / static_cast<double>(iv.size());
      for (size_t i = iv.begin; i < iv.end; ++i) pmf[i] = avg;
    }
  }
  auto result = Distribution::Create(std::move(pmf));
  HISTEST_CHECK_OK(result);
  return std::move(result).value();
}

PiecewiseConstant FlattenAll(const Distribution& d,
                             const Partition& partition) {
  HISTEST_CHECK_EQ(d.size(), partition.domain_size());
  const PrefixMassIndex& index = d.PrefixIndex();
  std::vector<double> masses;
  masses.reserve(partition.NumIntervals());
  for (const Interval& iv : partition.intervals()) {
    masses.push_back(index.MassOf(iv));
  }
  return PiecewiseConstant::FromPartitionMasses(partition, masses);
}

double FlattenedL1Distance(const Distribution& d, const Partition& partition) {
  HISTEST_CHECK_EQ(d.size(), partition.domain_size());
  const PrefixMassIndex& index = d.PrefixIndex();
  const size_t num_intervals = partition.NumIntervals();
  std::vector<double> avg(num_intervals);
  std::vector<size_t> ends(num_intervals);
  for (size_t j = 0; j < num_intervals; ++j) {
    const Interval& iv = partition.interval(j);
    avg[j] = index.MassOf(iv) / static_cast<double>(iv.size());
    ends[j] = iv.end;
  }
  return FusedExpandL1Kernel(avg.data(), ends.data(), num_intervals,
                             d.pmf().data(), d.size());
}

}  // namespace histest
