#ifndef HISTEST_HISTOGRAM_FIT_DP_H_
#define HISTEST_HISTOGRAM_FIT_DP_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dist/piecewise.h"

namespace histest {

/// One atom of a weighted piecewise-fitting problem: a run of `weight`
/// domain elements sharing the target value `value`. Atoms with
/// `cost_weight == 0` act as free gaps: a fitted piece may cover them at no
/// cost (used for discarded subdomains in Algorithm 1's Step 10 check).
struct WeightedAtom {
  double value = 0.0;
  /// Number of domain elements the atom spans (>= 1).
  double length = 1.0;
  /// Weight used in the fitting cost; equals `length` for kept atoms and 0
  /// for gap atoms.
  double cost_weight = 1.0;
};

/// A fitted piecewise-constant function over an atom sequence.
struct AtomFit {
  /// Piece boundaries as atom indices: piece p covers atoms
  /// [starts[p], starts[p+1]) with constant value values[p]; starts has one
  /// trailing entry equal to the atom count.
  std::vector<size_t> piece_starts;
  std::vector<double> piece_values;
  /// Total weighted L1 error: sum over atoms of
  /// cost_weight * |value - fitted|.
  double l1_error = 0.0;
};

/// DP engine selection for the k-piece fitting routines.
enum class FitDpMode {
  /// Cost-bounded pruned DP over a persistent (path-copied) weighted rank
  /// tree: any segment cost is one stateless O(log V) version-difference
  /// descent (V = distinct values), with no O(M^2) table, and the scan
  /// fetches four probes at a time through interleaved descents to overlap
  /// their memory latency. Each DP cell scans candidate piece starts
  /// backward and stops as soon as cur[s-1] + Cost(s, e) exceeds the best
  /// candidate — a valid bound for every remaining start because segment
  /// costs are superadditive over concatenation (note they are NOT Monge
  /// on domain-ordered values, so SMAWK-style argmin restriction would be
  /// incorrect). Scans stop after roughly one optimal piece length:
  /// ~O(k M L log V) for typical piece length L; the worst case degrades
  /// toward the exhaustive scan but never builds the quadratic table.
  /// Memory O(M log V) for the tree pool plus min(k, M) * M parent
  /// entries. Produces the same cost and, under exact arithmetic, the same
  /// piece boundaries as kReference (identical leftmost/strict-improvement
  /// tie-breaking).
  kFast,
  /// Exhaustive DP over the precomputed O(M^2) SegmentCostTable:
  /// O(M^2 (log M + k)) time, O(M^2) memory. Kept as the equivalence
  /// oracle for property tests and as the baseline in bench_micro.
  kReference,
};

/// Atom-count cap for FitDpMode::kFast (memory is the binding constraint:
/// the parent table is min(k, M) * M 32-bit entries).
inline constexpr size_t kFitDpFastMaxAtoms = size_t{1} << 18;

/// Precomputed L1 segment costs over an atom sequence:
/// Cost(s, e) = min_c sum_{t in [s, e]} cost_weight_t * |value_t - c|,
/// i.e., the weighted-median fitting cost. Construction is
/// O(M^2 log M) time and O(M^2) memory; M is capped (kMaxAtoms) so callers
/// coarsen long sequences first (see fit_merge).
class SegmentCostTable {
 public:
  static constexpr size_t kMaxAtoms = 4096;

  explicit SegmentCostTable(const std::vector<WeightedAtom>& atoms);

  size_t num_atoms() const { return m_; }

  /// Cost of fitting one constant to atoms [s, e] (inclusive). s <= e < M.
  double Cost(size_t s, size_t e) const {
    HISTEST_DCHECK(s <= e && e < m_);
    return cost_[s * m_ + e];
  }

  /// The optimal constant (a weighted median) for atoms [s, e].
  double OptimalValue(size_t s, size_t e) const;

 private:
  size_t m_;
  std::vector<double> cost_;
  const std::vector<WeightedAtom>* atoms_;  // not owned; outlives the table
};

/// Exact best k-piece L1 fit over an atom sequence via dynamic programming.
/// The default kFast mode uses the pruned DP (near-linear levels on
/// realistic inputs); kReference is the exhaustive O(M^2 (log M + k)) DP.
/// Both return the optimal fit; errors if
/// the atom sequence is empty, k == 0, or M exceeds the mode's atom cap
/// (SegmentCostTable::kMaxAtoms for kReference, kFitDpFastMaxAtoms for
/// kFast).
Result<AtomFit> FitAtomsL1(const std::vector<WeightedAtom>& atoms, size_t k,
                           FitDpMode mode = FitDpMode::kFast);

/// Exact best k-piece L2 fit over an atom sequence (piece value = weighted
/// mean; segment costs are O(1) from prefix sums in both modes, so the
/// kFast pruned scans cost O(1) per probe). Same preconditions as
/// FitAtomsL1.
/// `l1_error` in the result holds the *L2 squared* error for this variant.
Result<AtomFit> FitAtomsL2(const std::vector<WeightedAtom>& atoms, size_t k,
                           FitDpMode mode = FitDpMode::kFast);

/// Converts a dense target vector into unit atoms (run-length compressing
/// equal adjacent values first).
std::vector<WeightedAtom> AtomsFromDense(const std::vector<double>& values);

/// Converts an atom fit over `atoms` back into a piecewise-constant function
/// over the original domain (atom lengths give element spans).
Result<PiecewiseConstant> FitToPiecewise(const std::vector<WeightedAtom>& atoms,
                                         const AtomFit& fit);

/// Exact best k-piece L1 fit to a dense target; convenience wrapper around
/// AtomsFromDense + FitAtomsL1 + FitToPiecewise.
struct DenseFitResult {
  PiecewiseConstant fit;
  double l1_error = 0.0;
};
Result<DenseFitResult> FitHistogramL1(const std::vector<double>& target,
                                      size_t k);

}  // namespace histest

#endif  // HISTEST_HISTOGRAM_FIT_DP_H_
