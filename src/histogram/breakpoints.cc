#include "histogram/breakpoints.h"

#include <algorithm>

#include "common/check.h"

namespace histest {

std::vector<size_t> BreakpointsOf(const std::vector<double>& values) {
  std::vector<size_t> breaks;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i - 1] != values[i]) breaks.push_back(i);
  }
  return breaks;
}

size_t MinPiecesOf(const std::vector<double>& values) {
  HISTEST_CHECK(!values.empty());
  return BreakpointsOf(values).size() + 1;
}

bool IsKHistogramDense(const std::vector<double>& values, size_t k) {
  return MinPiecesOf(values) <= k;
}

std::vector<size_t> BreakpointIntervalsOf(const PiecewiseConstant& d,
                                          const Partition& partition) {
  HISTEST_CHECK_EQ(d.domain_size(), partition.domain_size());
  std::vector<size_t> result;
  const PiecewiseConstant simplified = d.Simplified();
  for (size_t p = 1; p < simplified.NumPieces(); ++p) {
    // A new piece of d starts at `cut`; the interval containing cut-1 and
    // cut is a breakpoint interval iff the cut is strictly inside it.
    const size_t cut = simplified.pieces()[p].interval.begin;
    const size_t j = partition.IntervalOf(cut);
    if (partition.interval(j).begin < cut) {
      if (result.empty() || result.back() != j) result.push_back(j);
    }
  }
  return result;
}

}  // namespace histest
