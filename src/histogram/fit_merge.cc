#include "histogram/fit_merge.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/math_util.h"

namespace histest {
namespace {

/// A live segment in the greedy merger: a run of original atoms kept as a
/// value-sorted (value, weight) list for weighted-median cost evaluation.
struct Segment {
  std::vector<std::pair<double, double>> sorted_vw;  // kept atoms only
  double total_length = 0.0;
  double total_weight = 0.0;
  double cost = 0.0;  // weighted-median L1 cost of this segment
  size_t prev = std::numeric_limits<size_t>::max();
  size_t next = std::numeric_limits<size_t>::max();
  size_t version = 0;
  bool alive = true;
};

/// Weighted-median L1 cost of a value-sorted (value, weight) list.
double MedianCost(const std::vector<std::pair<double, double>>& vw,
                  double total_weight, double* median_out) {
  if (vw.empty() || total_weight <= 0.0) {
    if (median_out != nullptr) *median_out = 0.0;
    return 0.0;
  }
  double acc = 0.0;
  size_t med_idx = vw.size() - 1;
  for (size_t i = 0; i < vw.size(); ++i) {
    // analyzer-allow(raw-accumulate): weighted-median prefix scan with an
    // early exit at half mass; a blocked reduction has no prefix to test.
    acc += vw[i].second;
    if (acc >= 0.5 * total_weight) {
      med_idx = i;
      break;
    }
  }
  const double med = vw[med_idx].first;
  KahanSum cost;
  for (const auto& [v, w] : vw) cost.Add(w * std::fabs(v - med));
  if (median_out != nullptr) *median_out = med;
  return cost.Total();
}

std::vector<std::pair<double, double>> MergeSorted(
    const std::vector<std::pair<double, double>>& a,
    const std::vector<std::pair<double, double>>& b) {
  std::vector<std::pair<double, double>> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

struct HeapEntry {
  double cost_increase;
  size_t left;           // segment id; merge candidate is (left, left.next)
  size_t left_version;
  size_t right_version;

  bool operator>(const HeapEntry& other) const {
    return cost_increase > other.cost_increase;
  }
};

}  // namespace

Result<CoarsenResult> GreedyMergeAtoms(const std::vector<WeightedAtom>& atoms,
                                       size_t target_count) {
  if (atoms.empty()) return Status::InvalidArgument("atom sequence is empty");
  if (target_count == 0) {
    return Status::InvalidArgument("target_count must be >= 1");
  }
  const size_t m = atoms.size();
  std::vector<Segment> segments(m);
  for (size_t i = 0; i < m; ++i) {
    Segment& s = segments[i];
    if (atoms[i].cost_weight > 0.0) {
      s.sorted_vw.emplace_back(atoms[i].value, atoms[i].cost_weight);
      s.total_weight = atoms[i].cost_weight;
    }
    s.total_length = atoms[i].length;
    s.cost = 0.0;
    s.prev = (i == 0) ? std::numeric_limits<size_t>::max() : i - 1;
    s.next = (i + 1 == m) ? std::numeric_limits<size_t>::max() : i + 1;
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  auto push_candidate = [&](size_t left) {
    const size_t right = segments[left].next;
    if (right == std::numeric_limits<size_t>::max()) return;
    const auto merged = MergeSorted(segments[left].sorted_vw,
                                    segments[right].sorted_vw);
    const double merged_cost = MedianCost(
        merged, segments[left].total_weight + segments[right].total_weight,
        nullptr);
    heap.push(HeapEntry{
        merged_cost - segments[left].cost - segments[right].cost, left,
        segments[left].version, segments[right].version});
  };
  for (size_t i = 0; i + 1 < m; ++i) push_candidate(i);

  size_t live = m;
  size_t head = 0;
  while (live > target_count) {
    HISTEST_CHECK(!heap.empty());
    const HeapEntry top = heap.top();
    heap.pop();
    Segment& left = segments[top.left];
    if (!left.alive || left.version != top.left_version) continue;
    const size_t right_id = left.next;
    if (right_id == std::numeric_limits<size_t>::max()) continue;
    Segment& right = segments[right_id];
    if (!right.alive || right.version != top.right_version) continue;
    // Execute the merge into `left`.
    left.sorted_vw = MergeSorted(left.sorted_vw, right.sorted_vw);
    left.total_length += right.total_length;
    left.total_weight += right.total_weight;
    left.cost = MedianCost(left.sorted_vw, left.total_weight, nullptr);
    left.next = right.next;
    if (right.next != std::numeric_limits<size_t>::max()) {
      segments[right.next].prev = top.left;
    }
    right.alive = false;
    ++left.version;
    --live;
    if (left.prev != std::numeric_limits<size_t>::max()) {
      push_candidate(left.prev);
    }
    push_candidate(top.left);
  }

  CoarsenResult result;
  KahanSum error;
  for (size_t id = head; id != std::numeric_limits<size_t>::max();
       id = segments[id].next) {
    const Segment& s = segments[id];
    double median = 0.0;
    const double cost = MedianCost(s.sorted_vw, s.total_weight, &median);
    error.Add(cost);
    result.atoms.push_back(
        WeightedAtom{median, s.total_length, s.total_weight});
  }
  result.coarsening_error = error.Total();
  return result;
}

Result<PiecewiseConstant> LearnMergedHistogram(const CountVector& counts,
                                               size_t t, PieceValueRule rule) {
  if (counts.total() == 0) {
    return Status::FailedPrecondition("cannot learn from zero samples");
  }
  if (t == 0) return Status::InvalidArgument("t must be >= 1");
  auto empirical = counts.ToEmpirical();
  HISTEST_RETURN_IF_ERROR(empirical.status());
  const std::vector<double>& pmf = empirical.value().pmf();
  const PrefixMassIndex& index = empirical.value().PrefixIndex();
  std::vector<WeightedAtom> atoms = AtomsFromDense(pmf);
  auto coarse = GreedyMergeAtoms(atoms, t);
  HISTEST_RETURN_IF_ERROR(coarse.status());

  // Rebuild piece boundaries (element offsets) from the coarsened lengths,
  // choosing each piece's value per `rule`.
  std::vector<PiecewiseConstant::Piece> pieces;
  size_t cursor = 0;
  for (const WeightedAtom& a : coarse.value().atoms) {
    const size_t len = static_cast<size_t>(std::llround(a.length));
    const Interval iv{cursor, cursor + len};
    double value = a.value;  // kMedian: the merged run's weighted median
    if (rule == PieceValueRule::kAverage) {
      // Piece average of the empirical distribution (mass-preserving);
      // O(1) per piece from the prefix index.
      value = index.MassOf(iv) / static_cast<double>(len);
    }
    pieces.push_back(PiecewiseConstant::Piece{iv, value});
    cursor += len;
  }
  auto pwc = PiecewiseConstant::Create(counts.size(), std::move(pieces));
  HISTEST_RETURN_IF_ERROR(pwc.status());
  if (rule == PieceValueRule::kAverage) return pwc;
  return pwc.value().Normalized();
}

}  // namespace histest
