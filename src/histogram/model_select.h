#ifndef HISTEST_HISTOGRAM_MODEL_SELECT_H_
#define HISTEST_HISTOGRAM_MODEL_SELECT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dist/piecewise.h"
#include "testing/tester.h"

namespace histest {

/// Factory producing a fresh tester for H_k (fresh randomness per call).
using HistogramTesterFactory =
    std::function<std::unique_ptr<DistributionTester>(size_t k, uint64_t seed)>;

/// Tuning of the model-selection (doubling) search from Section 1.1.
struct ModelSelectOptions {
  /// Upper limit for the search; 0 means the oracle's domain size.
  size_t max_k = 0;
  /// Per-probe majority-vote repetitions (amplifies the tester's 2/3
  /// guarantee so the ~log^2(k) probes of the search stay reliable).
  int repetitions = 5;
};

/// Result of the search, with the probe trace for diagnostics.
struct ModelSelectResult {
  /// Smallest k the (amplified) tester accepted; max_k if none was.
  size_t k = 0;
  int64_t samples_used = 0;
  /// (k probed, accepted) in probe order.
  std::vector<std::pair<size_t, bool>> probes;
};

/// The paper's motivating model-selection procedure: doubling search over k
/// (1, 2, 4, ...) until the tester accepts, then binary search for the
/// smallest accepted k in the final bracket. With the tester's guarantees,
/// the result is a k such that D is close to H_k but far from H_{k'} for
/// k' much smaller — the right parameter to hand to an agnostic learner.
Result<ModelSelectResult> FindSmallestAcceptedK(
    SampleOracle& oracle, const HistogramTesterFactory& factory,
    const ModelSelectOptions& options, uint64_t seed);

/// Agnostic k-histogram learner over an oracle: draws
/// ceil(sample_constant * k / eps^2) samples and greedy-merges the
/// empirical distribution down to k pieces (the [ADLS15]-style learning
/// stage that follows model selection).
Result<PiecewiseConstant> LearnKHistogramFromOracle(SampleOracle& oracle,
                                                    size_t k, double eps,
                                                    double sample_constant = 4.0);

}  // namespace histest

#endif  // HISTEST_HISTOGRAM_MODEL_SELECT_H_
