#ifndef HISTEST_HISTOGRAM_MODALITY_H_
#define HISTEST_HISTOGRAM_MODALITY_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dist/distribution.h"
#include "dist/interval.h"
#include "dist/piecewise.h"
#include "histogram/distance_to_hk.h"
#include "histogram/fit_dp.h"

namespace histest {

/// Utilities for k-modal distributions — the class the paper's Theorem 1.2
/// remark extends the lower bound to ("pmf allowed to go up and down, or
/// down and up, at most k times").

/// Number of strict direction changes of the sequence (flat steps extend
/// the current direction). A monotone sequence has 0; a unimodal one has
/// at most 1.
size_t DirectionChanges(const std::vector<double>& values);

/// True iff the sequence has at most k direction changes.
bool IsKModalDense(const std::vector<double>& values, size_t k);

/// Exact minimum L1 error of approximating `values` by a sequence with at
/// most `max_changes` direction changes (i.e., at most max_changes + 1
/// alternating monotone runs). Computed by dynamic programming over run
/// boundaries with isotonic (L1/PAVA, weighted-median blocks) segment
/// costs; O(M^2 (log M + max_changes)) time, O(M^2) memory. Requires
/// values.size() <= kMaxKModalInput.
Result<double> KModalFitError(const std::vector<double>& values,
                              size_t max_changes);

constexpr size_t kMaxKModalInput = 1024;

/// Lower bound on d_TV(d, {k-modal distributions}):
/// KModalFitError(pmf, k) / 2 — any k-modal distribution is in particular
/// a k-direction-change sequence.
Result<double> DistanceToKModalLowerBound(const Distribution& d, size_t k);

/// Weighted k-modal fit error over an atom sequence (atoms carry lengths
/// and cost weights; zero-weight atoms act as free gaps, exactly as in
/// FitAtomsL1). Same DP as KModalFitError with weighted isotonic (PAVA)
/// segment costs. Requires atoms.size() <= kMaxKModalInput.
Result<double> KModalFitErrorAtoms(const std::vector<WeightedAtom>& atoms,
                                   size_t max_changes);

/// Bounds on the restricted distance
///   min over <= max_changes direction-change functions F of
///   d^G_TV(dhat, F),
/// the k-modal analogue of RestrictedDistanceToHkPieces, used by the
/// KModalTester's offline check. Long atom sequences are greedily
/// coarsened (Lipschitz sandwich); the lower bound additionally uses a
/// modal witness: chunk the atoms into disjoint groups — a function with
/// <= c direction changes is monotone on all but c groups, and a monotone
/// function pays at least the group's best isotonic (up or down) fit cost.
Result<DistanceBounds> RestrictedDistanceToKModal(
    const PiecewiseConstant& dhat, const std::vector<Interval>& kept,
    size_t max_changes, size_t coarsen_limit = 512);

}  // namespace histest

#endif  // HISTEST_HISTOGRAM_MODALITY_H_
