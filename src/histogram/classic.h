#ifndef HISTEST_HISTOGRAM_CLASSIC_H_
#define HISTEST_HISTOGRAM_CLASSIC_H_

#include <cstddef>

#include "common/status.h"
#include "dist/distribution.h"
#include "dist/piecewise.h"

namespace histest {

/// The three textbook database histogram constructions ([Koo80], [PIHS96],
/// [JKM+98] — the literature the paper's introduction situates itself in),
/// as k-bucket summaries of an explicit distribution. Together with the
/// sampled learner they let the selectivity experiments compare "classic
/// summaries built from full data" against "tested-and-learned summaries
/// built from samples".

/// Equi-width: k buckets of (near-)equal domain width, each holding its
/// exact mass. Requires 1 <= k <= n.
Result<PiecewiseConstant> EquiWidthHistogram(const Distribution& d, size_t k);

/// Equi-depth: bucket boundaries at the mass quantiles j/k, so buckets
/// carry (near-)equal mass; heavy elements can force fewer than k buckets.
/// Requires 1 <= k <= n.
Result<PiecewiseConstant> EquiDepthHistogram(const Distribution& d, size_t k);

/// V-optimal: the k-bucket histogram minimizing the sum of squared errors
/// ([JKM+98]), via the exact L2 dynamic program (inputs longer than the DP
/// limit are first coarsened by greedy merging; see fit_dp/fit_merge).
Result<PiecewiseConstant> VOptimalHistogram(const Distribution& d, size_t k);

}  // namespace histest

#endif  // HISTEST_HISTOGRAM_CLASSIC_H_
