#ifndef HISTEST_HISTOGRAM_DISTANCE_TO_HK_H_
#define HISTEST_HISTOGRAM_DISTANCE_TO_HK_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dist/distribution.h"
#include "dist/interval.h"
#include "dist/piecewise.h"
#include "histogram/fit_dp.h"

namespace histest {

/// Certified bracketing of a distance value.
struct DistanceBounds {
  /// Lower bound (from the unconstrained k-piece DP optimum).
  double lower = 0.0;
  /// Upper bound (total variation to an explicitly constructed member of
  /// H_k, so always achievable).
  double upper = 0.0;
};

struct HkDistanceOptions {
  /// Maximum atom-sequence length handed to the exact k-piece DP; longer
  /// sequences are first coarsened by greedy merging (the Lipschitz sandwich
  /// then widens the returned bounds by the coarsening error).
  size_t dp_atom_limit = 1024;
  /// Engine selection. kFast (default) uses the pruned DP and evaluates
  /// the candidate distances piecewise over atom spans -- no O(n)
  /// dense candidate vectors are materialized. kReference uses the
  /// exhaustive DP and dense candidate expansion; it is kept as the oracle
  /// for equivalence tests (values agree to ~1e-12; summation orders
  /// differ).
  FitDpMode mode = FitDpMode::kFast;
};

/// Bounds on d_TV(d, H_k): the distance from an explicit distribution to the
/// class of k-histograms ([CDGR16, Lemma 4.11] offline computation).
///
/// `lower` comes from the exact k-piece L1 fit (every member of H_k is in
/// particular a non-negative k-piece function); `upper` is the exact TV to
/// the better of (a) the mass-preserving average-valued fit and (b) the
/// normalized median-valued fit — both bona fide k-histogram distributions.
/// When coarsening was needed, both bounds are widened by the (exact)
/// coarsening error.
Result<DistanceBounds> DistanceToHk(const Distribution& d, size_t k,
                                    const HkDistanceOptions& options = {});

/// Step-10 subdomain check: bounds on
///   min over k-piece non-negative piecewise-constant F of
///   d^G_TV(dhat, F),
/// where G is the union of `kept` intervals and the complement intervals are
/// cost-free "gaps" that may host breakpoints. The `kept` intervals must be
/// sorted, disjoint sub-intervals of dhat's domain.
Result<DistanceBounds> RestrictedDistanceToHkPieces(
    const PiecewiseConstant& dhat, const std::vector<Interval>& kept, size_t k,
    const HkDistanceOptions& options = {});

/// Builds the weighted atom sequence of a piecewise hypothesis intersected
/// with a kept-subdomain: kept spans carry their length as cost weight,
/// complement spans become zero-weight gap atoms. Shared by the H_k and
/// k-modal subdomain distance computations. `kept` must be sorted,
/// disjoint, non-empty sub-intervals of dhat's domain.
Result<std::vector<WeightedAtom>> BuildSubdomainAtoms(
    const PiecewiseConstant& dhat, const std::vector<Interval>& kept);

}  // namespace histest

#endif  // HISTEST_HISTOGRAM_DISTANCE_TO_HK_H_
