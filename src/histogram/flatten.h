#ifndef HISTEST_HISTOGRAM_FLATTEN_H_
#define HISTEST_HISTOGRAM_FLATTEN_H_

#include <vector>

#include "dist/distribution.h"
#include "dist/interval.h"
#include "dist/piecewise.h"

namespace histest {

/// The paper's flattening operator D-tilde^J: keeps D exactly on the
/// intervals whose indices appear in `keep_exact` and replaces it by its
/// interval average (D(I)/|I|) everywhere else. With `keep_exact` empty this
/// is the full flattening of D with respect to the partition.
Distribution FlattenOutside(const Distribution& d, const Partition& partition,
                            const std::vector<size_t>& keep_exact);

/// Full flattening as a succinct object: one piece per partition interval
/// carrying D's interval mass.
PiecewiseConstant FlattenAll(const Distribution& d, const Partition& partition);

/// L1 distance between D and its full flattening with respect to the
/// partition, sum_i |Dtilde(i) - D(i)| (halve for total variation), without
/// materializing the flattened pmf: the per-interval averages are handed to
/// the fused expand kernel as runs and expanded in-register. Bit-identical
/// to L1Distance(FlattenOutside(d, partition, {}).pmf(), d.pmf()).
double FlattenedL1Distance(const Distribution& d, const Partition& partition);

}  // namespace histest

#endif  // HISTEST_HISTOGRAM_FLATTEN_H_
