#include "histogram/fit_dp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace histest {
namespace {

/// Fenwick (binary indexed) tree over value ranks, supporting prefix sums
/// and a prefix-threshold search; used for incremental weighted medians.
class Fenwick {
 public:
  explicit Fenwick(size_t n) : tree_(n + 1, 0.0) {}

  void Add(size_t i, double v) {
    for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) tree_[j] += v;
  }

  /// Sum of entries [0, i].
  double PrefixSum(size_t i) const {
    double s = 0.0;
    for (size_t j = i + 1; j > 0; j -= j & (~j + 1)) s += tree_[j];
    return s;
  }

  double Total() const { return PrefixSum(tree_.size() - 2); }

  /// Smallest index i such that PrefixSum(i) >= target (assumes target <=
  /// Total(); returns the last index otherwise).
  size_t LowerBound(double target) const {
    size_t pos = 0;
    double acc = 0.0;
    size_t pw = 1;
    while ((pw << 1) < tree_.size()) pw <<= 1;
    for (; pw > 0; pw >>= 1) {
      const size_t next = pos + pw;
      if (next < tree_.size() && acc + tree_[next] < target) {
        pos = next;
        acc += tree_[next];
      }
    }
    // pos is the count of entries strictly below the threshold position.
    return std::min(pos, tree_.size() - 2);
  }

  void Clear() { std::fill(tree_.begin(), tree_.end(), 0.0); }

 private:
  std::vector<double> tree_;
};

std::vector<double> DistinctSortedValues(const std::vector<WeightedAtom>& atoms) {
  std::vector<double> values;
  values.reserve(atoms.size());
  for (const auto& a : atoms) values.push_back(a.value);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

size_t RankOf(const std::vector<double>& sorted, double v) {
  return static_cast<size_t>(
      std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
}

constexpr size_t kNoNewPiece = std::numeric_limits<size_t>::max();

}  // namespace

SegmentCostTable::SegmentCostTable(const std::vector<WeightedAtom>& atoms)
    : m_(atoms.size()), atoms_(&atoms) {
  HISTEST_CHECK_GT(m_, 0u);
  HISTEST_CHECK_LE(m_, kMaxAtoms);
  cost_.assign(m_ * m_, 0.0);
  const std::vector<double> values = DistinctSortedValues(atoms);
  Fenwick weight(values.size());
  Fenwick weighted_value(values.size());
  for (size_t s = 0; s < m_; ++s) {
    weight.Clear();
    weighted_value.Clear();
    for (size_t e = s; e < m_; ++e) {
      const WeightedAtom& a = atoms[e];
      if (a.cost_weight > 0.0) {
        const size_t r = RankOf(values, a.value);
        weight.Add(r, a.cost_weight);
        weighted_value.Add(r, a.cost_weight * a.value);
      }
      const double total_w = weight.Total();
      if (total_w <= 0.0) {
        cost_[s * m_ + e] = 0.0;
        continue;
      }
      const size_t med_rank = weight.LowerBound(0.5 * total_w);
      const double med = values[med_rank];
      const double w_le = weight.PrefixSum(med_rank);
      const double s_le = weighted_value.PrefixSum(med_rank);
      const double s_tot = weighted_value.Total();
      const double cost = med * w_le - s_le + (s_tot - s_le) -
                          med * (total_w - w_le);
      // Tiny negative values can appear from float cancellation.
      cost_[s * m_ + e] = std::max(cost, 0.0);
    }
  }
}

double SegmentCostTable::OptimalValue(size_t s, size_t e) const {
  HISTEST_CHECK(s <= e && e < m_);
  // Recompute the weighted median directly (O(len log len)); only called
  // once per reconstructed piece.
  std::vector<std::pair<double, double>> vw;
  double total_w = 0.0;
  for (size_t t = s; t <= e; ++t) {
    const WeightedAtom& a = (*atoms_)[t];
    if (a.cost_weight > 0.0) {
      vw.emplace_back(a.value, a.cost_weight);
      total_w += a.cost_weight;
    }
  }
  if (vw.empty()) return 0.0;
  std::sort(vw.begin(), vw.end());
  double acc = 0.0;
  for (const auto& [v, w] : vw) {
    acc += w;
    if (acc >= 0.5 * total_w) return v;
  }
  return vw.back().first;
}

namespace {

/// Shared DP over precomputed segment costs; returns the fit with <= k
/// pieces minimizing total cost. `optimal_value(s, e)` supplies the piece
/// constant during reconstruction.
template <typename CostFn, typename ValueFn>
AtomFit RunPieceDp(size_t m, size_t k, const CostFn& cost,
                   const ValueFn& optimal_value) {
  const size_t levels = std::min(k, m);
  std::vector<double> prev(m), cur(m);
  // parent[j][e]: start atom of the last piece at level j, or kNoNewPiece if
  // level j reuses the level j-1 solution (fewer pieces suffice).
  std::vector<std::vector<size_t>> parent(
      levels, std::vector<size_t>(m, kNoNewPiece));
  for (size_t e = 0; e < m; ++e) {
    prev[e] = cost(0, e);
    parent[0][e] = 0;
  }
  for (size_t j = 1; j < levels; ++j) {
    for (size_t e = 0; e < m; ++e) {
      double best = prev[e];
      size_t best_s = kNoNewPiece;
      for (size_t s = 1; s <= e; ++s) {
        const double candidate = prev[s - 1] + cost(s, e);
        if (candidate < best) {
          best = candidate;
          best_s = s;
        }
      }
      cur[e] = best;
      parent[j][e] = best_s;
    }
    std::swap(prev, cur);
  }
  // Reconstruct.
  AtomFit fit;
  fit.l1_error = prev[m - 1];
  std::vector<std::pair<size_t, size_t>> segments;  // [start, end] inclusive
  size_t j = levels - 1;
  size_t e = m - 1;
  while (true) {
    while (j > 0 && parent[j][e] == kNoNewPiece) --j;
    const size_t s = parent[j][e];
    HISTEST_CHECK_NE(s, kNoNewPiece);
    segments.emplace_back(s, e);
    if (s == 0) break;
    HISTEST_CHECK_GT(j, 0u);
    e = s - 1;
    --j;
  }
  std::reverse(segments.begin(), segments.end());
  for (const auto& [s_idx, e_idx] : segments) {
    fit.piece_starts.push_back(s_idx);
    fit.piece_values.push_back(optimal_value(s_idx, e_idx));
  }
  fit.piece_starts.push_back(m);
  return fit;
}

Status ValidateFitInput(const std::vector<WeightedAtom>& atoms, size_t k) {
  if (atoms.empty()) return Status::InvalidArgument("atom sequence is empty");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (atoms.size() > SegmentCostTable::kMaxAtoms) {
    return Status::InvalidArgument(
        "atom sequence too long for exact DP (" +
        std::to_string(atoms.size()) + " > " +
        std::to_string(SegmentCostTable::kMaxAtoms) +
        "); coarsen with GreedyMergeAtoms first");
  }
  for (const auto& a : atoms) {
    if (!(a.length >= 1.0) || !(a.cost_weight >= 0.0) ||
        !std::isfinite(a.value)) {
      return Status::InvalidArgument("invalid atom (length < 1, negative "
                                     "weight, or non-finite value)");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<AtomFit> FitAtomsL1(const std::vector<WeightedAtom>& atoms, size_t k) {
  HISTEST_RETURN_IF_ERROR(ValidateFitInput(atoms, k));
  const SegmentCostTable table(atoms);
  return RunPieceDp(
      atoms.size(), k, [&](size_t s, size_t e) { return table.Cost(s, e); },
      [&](size_t s, size_t e) { return table.OptimalValue(s, e); });
}

Result<AtomFit> FitAtomsL2(const std::vector<WeightedAtom>& atoms, size_t k) {
  HISTEST_RETURN_IF_ERROR(ValidateFitInput(atoms, k));
  const size_t m = atoms.size();
  // Prefix sums of weight, weight*value, weight*value^2.
  std::vector<double> w(m + 1, 0.0), wv(m + 1, 0.0), wvv(m + 1, 0.0);
  for (size_t i = 0; i < m; ++i) {
    const double cw = atoms[i].cost_weight;
    const double v = atoms[i].value;
    w[i + 1] = w[i] + cw;
    wv[i + 1] = wv[i] + cw * v;
    wvv[i + 1] = wvv[i] + cw * v * v;
  }
  auto cost = [&](size_t s, size_t e) {
    const double sw = w[e + 1] - w[s];
    if (sw <= 0.0) return 0.0;
    const double swv = wv[e + 1] - wv[s];
    const double swvv = wvv[e + 1] - wvv[s];
    return std::max(swvv - swv * swv / sw, 0.0);
  };
  auto value = [&](size_t s, size_t e) {
    const double sw = w[e + 1] - w[s];
    return sw > 0.0 ? (wv[e + 1] - wv[s]) / sw : 0.0;
  };
  return RunPieceDp(m, k, cost, value);
}

std::vector<WeightedAtom> AtomsFromDense(const std::vector<double>& values) {
  std::vector<WeightedAtom> atoms;
  size_t start = 0;
  for (size_t i = 1; i <= values.size(); ++i) {
    if (i == values.size() || values[i] != values[start]) {
      const double len = static_cast<double>(i - start);
      atoms.push_back(WeightedAtom{values[start], len, len});
      start = i;
    }
  }
  return atoms;
}

Result<PiecewiseConstant> FitToPiecewise(const std::vector<WeightedAtom>& atoms,
                                         const AtomFit& fit) {
  if (fit.piece_starts.size() != fit.piece_values.size() + 1) {
    return Status::InvalidArgument("malformed AtomFit");
  }
  // Element offset of each atom.
  std::vector<size_t> offsets(atoms.size() + 1, 0);
  for (size_t i = 0; i < atoms.size(); ++i) {
    offsets[i + 1] =
        offsets[i] + static_cast<size_t>(std::llround(atoms[i].length));
  }
  std::vector<PiecewiseConstant::Piece> pieces;
  for (size_t p = 0; p < fit.piece_values.size(); ++p) {
    const size_t begin = offsets[fit.piece_starts[p]];
    const size_t end = offsets[fit.piece_starts[p + 1]];
    pieces.push_back(PiecewiseConstant::Piece{Interval{begin, end},
                                              fit.piece_values[p]});
  }
  return PiecewiseConstant::Create(offsets.back(), std::move(pieces));
}

Result<DenseFitResult> FitHistogramL1(const std::vector<double>& target,
                                      size_t k) {
  const std::vector<WeightedAtom> atoms = AtomsFromDense(target);
  auto fit = FitAtomsL1(atoms, k);
  HISTEST_RETURN_IF_ERROR(fit.status());
  auto pwc = FitToPiecewise(atoms, fit.value());
  HISTEST_RETURN_IF_ERROR(pwc.status());
  return DenseFitResult{std::move(pwc).value(), fit.value().l1_error};
}

}  // namespace histest
