#include "histogram/fit_dp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"
#include "obs/obs.h"
#include "obs/names.h"

namespace histest {
namespace {

/// Fenwick (binary indexed) tree over value ranks, supporting prefix sums
/// and a prefix-threshold search; used for incremental weighted medians.
class Fenwick {
 public:
  explicit Fenwick(size_t n) : tree_(n + 1, 0.0) {}

  void Add(size_t i, double v) {
    for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) tree_[j] += v;
  }

  /// Sum of entries [0, i].
  double PrefixSum(size_t i) const {
    double s = 0.0;
    for (size_t j = i + 1; j > 0; j -= j & (~j + 1)) s += tree_[j];
    return s;
  }

  double Total() const { return PrefixSum(tree_.size() - 2); }

  /// Smallest index i such that PrefixSum(i) >= target (assumes target <=
  /// Total(); returns the last index otherwise).
  size_t LowerBound(double target) const {
    size_t pos = 0;
    double acc = 0.0;
    size_t pw = 1;
    while ((pw << 1) < tree_.size()) pw <<= 1;
    for (; pw > 0; pw >>= 1) {
      const size_t next = pos + pw;
      if (next < tree_.size() && acc + tree_[next] < target) {
        pos = next;
        // analyzer-allow(raw-accumulate): Fenwick rank descent; log(n)
        // additions along a root-to-leaf path, not a loop reduction.
        acc += tree_[next];
      }
    }
    // pos is the count of entries strictly below the threshold position.
    return std::min(pos, tree_.size() - 2);
  }

  void Clear() { std::fill(tree_.begin(), tree_.end(), 0.0); }

 private:
  std::vector<double> tree_;
};

std::vector<double> DistinctSortedValues(const std::vector<WeightedAtom>& atoms) {
  std::vector<double> values;
  values.reserve(atoms.size());
  for (const auto& a : atoms) values.push_back(a.value);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

size_t RankOf(const std::vector<double>& sorted, double v) {
  return static_cast<size_t>(
      std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
}

/// Sentinel parent entry: this DP level reuses the previous level's solution
/// (fewer pieces suffice). Parents are stored as 32-bit atom indices; both
/// atom caps are far below 2^32.
constexpr uint32_t kNoNewPiece = std::numeric_limits<uint32_t>::max();

/// How many scan probes the pruned DP requests per batched cost call; the
/// persistent-tree oracle overlaps this many independent descents. Four
/// lanes saturate the win: probes past the scan's stop point are wasted
/// work, and wider blocks spill the lanes' live state out of registers.
constexpr size_t kScanBlock = 4;

/// Persistent weighted rank tree: a path-copied segment tree over the
/// distinct atom values, with one immutable version per atom prefix
/// (roots_[i] aggregates atoms [0, i)). Any window [s, e] is the
/// difference of versions e+1 and s, so a segment cost is ONE stateless
/// O(log V) descent — no per-window state, no rebuild, and (unlike a
/// sliding-window structure) no O(window) work on the long early-level
/// scans where windows span thousands of atoms. Statelessness also lets
/// the DP evaluate several scan probes at once: Cost4 interleaves up to
/// four descents round-robin, overlapping their dependent node loads for
/// ~4x memory-level parallelism, while producing bit-identical values to
/// four scalar Cost calls (each lane performs the same operations in the
/// same order).
///
/// The median rule matches the reference table exactly: descend to the
/// smallest rank whose cumulative window weight reaches half the total
/// (the same >= tie rule as Fenwick::LowerBound), accumulating the
/// <=-median weight and weight*value aggregates along the way; the cost
///   med*w_le - wv_le + (total_wv - wv_le) - med*(total_w - w_le)
/// is then identical to the reference's on integer inputs (subtree sums
/// of integers are exact in any grouping) and equal to rounding
/// otherwise. Construction is O(M log V) time and pool memory; queries
/// mutate nothing, so results are a pure function of the
/// input (deterministic); 40-byte nodes carry their left child's
/// aggregates inline so each descent step touches one node pair. Gap
/// atoms (cost_weight <= 0) share the previous
/// version; all-gap windows cost 0 with median 0.
class PersistentRankTree {
 public:
  explicit PersistentRankTree(const std::vector<WeightedAtom>& atoms)
      : values_(DistinctSortedValues(atoms)) {
    const size_t m = atoms.size();
    size_t depth = 1;
    pad_ = 1;  // power-of-two rank universe: every descent has fixed depth
    while (pad_ < values_.size()) {
      pad_ <<= 1;
      ++depth;
    }
    nodes_.reserve(1 + m * (depth + 1));
    nodes_.push_back(Node{});  // index 0: shared empty node (self-childed)
    roots_.reserve(m + 1);
    roots_.push_back(0);
    for (size_t i = 0; i < m; ++i) {
      const double w = atoms[i].cost_weight;
      if (w <= 0.0) {  // gap atoms carry no cost
        roots_.push_back(roots_.back());
        continue;
      }
      roots_.push_back(Insert(roots_.back(), RankOf(values_, atoms[i].value),
                              w, w * atoms[i].value));
    }
  }

  /// Weighted-median L1 cost of fitting one constant to atoms [s, e].
  double Cost(size_t s, size_t e) const {
    double out;
    Descend<1>(&s, e, &out, nullptr);
    return out;
  }

  /// out[i] = Cost(s - i, e) for i in [0, blk); blk <= kScanBlock and
  /// s - blk + 1 must be a valid start. The descents run interleaved.
  void CostBlock(size_t s, size_t blk, size_t e, double* out) const {
    size_t starts[kScanBlock];
    for (size_t i = 0; i < blk; ++i) starts[i] = s - i;
    switch (blk) {
      case 1: Descend<1>(starts, e, out, nullptr); break;
      case 2: Descend<2>(starts, e, out, nullptr); break;
      case 3: Descend<3>(starts, e, out, nullptr); break;
      default: Descend<4>(starts, e, out, nullptr); break;
    }
  }

  double MedianValue(size_t s, size_t e) const {
    double cost;
    double med;
    Descend<1>(&s, e, &cost, &med);
    return med;
  }

 private:
  struct Node {
    double w = 0.0;
    double wv = 0.0;
    /// The left child's (w, wv), duplicated inline so a descent step needs
    /// only this node's cache line. Accumulated by the same additions in
    /// the same order as the child's own totals, hence bitwise equal.
    double lw = 0.0;
    double lwv = 0.0;
    uint32_t left = 0;
    uint32_t right = 0;
  };

  uint32_t Clone(uint32_t idx, double w, double wv) {
    Node n = nodes_[idx];
    n.w += w;
    n.wv += wv;
    nodes_.push_back(n);
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  uint32_t Insert(uint32_t root, size_t rank, double w, double wv) {
    const uint32_t new_root = Clone(root, w, wv);
    uint32_t cur = new_root;
    size_t lo = 0;
    size_t hi = pad_;
    while (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      if (rank < mid) {
        nodes_[cur].lw += w;
        nodes_[cur].lwv += wv;
        const uint32_t child = Clone(nodes_[cur].left, w, wv);
        nodes_[cur].left = child;
        cur = child;
        hi = mid;
      } else {
        const uint32_t child = Clone(nodes_[cur].right, w, wv);
        nodes_[cur].right = child;
        cur = child;
        lo = mid;
      }
    }
    return new_root;
  }

  /// kLanes interleaved median descents for windows [starts[i], e]; writes
  /// the window cost per lane and (for the single-lane form) the median.
  /// The padded power-of-two universe gives every lane the same fixed trip
  /// count, and each step selects its child with conditional moves instead
  /// of a data-dependent branch, so the lanes' node-load chains overlap
  /// instead of serializing behind branch mispredictions. Padding never
  /// changes results: dummy ranks carry no weight, and the invariant
  /// acc_w + subtree_weight >= target means the descent turns left before
  /// ever entering an all-dummy subtree.
  template <size_t kLanes>
  void Descend(const size_t* starts, size_t e, double* cost_out,
               double* median_out) const {
    uint32_t a[kLanes], b[kLanes];
    size_t lo[kLanes];
    double tot_w[kLanes], tot_wv[kLanes], target[kLanes];
    double acc_w[kLanes], acc_wv[kLanes];
    for (size_t i = 0; i < kLanes; ++i) {
      a[i] = roots_[e + 1];
      b[i] = roots_[starts[i]];
      lo[i] = 0;
      tot_w[i] = nodes_[a[i]].w - nodes_[b[i]].w;
      tot_wv[i] = nodes_[a[i]].wv - nodes_[b[i]].wv;
      target[i] = 0.5 * tot_w[i];
      acc_w[i] = 0.0;
      acc_wv[i] = 0.0;
    }
    for (size_t half = pad_ >> 1; half >= 1; half >>= 1) {
      for (size_t i = 0; i < kLanes; ++i) {
        const Node& na = nodes_[a[i]];
        const Node& nb = nodes_[b[i]];
        const double lw = na.lw - nb.lw;
        const double lwv = na.lwv - nb.lwv;
        const bool right = acc_w[i] + lw < target[i];
        a[i] = right ? na.right : na.left;
        b[i] = right ? nb.right : nb.left;
        acc_w[i] += right ? lw : 0.0;
        acc_wv[i] += right ? lwv : 0.0;
        lo[i] += right ? half : 0;
        __builtin_prefetch(&nodes_[a[i]]);
        __builtin_prefetch(&nodes_[b[i]]);
      }
    }
    for (size_t i = 0; i < kLanes; ++i) {
      if (!(tot_w[i] > 0.0)) {  // all-gap window
        cost_out[i] = 0.0;
        if (median_out != nullptr) median_out[i] = 0.0;  // like the reference
        continue;
      }
      const double med = values_[std::min(lo[i], values_.size() - 1)];
      const double w_le = acc_w[i] + (nodes_[a[i]].w - nodes_[b[i]].w);
      const double wv_le = acc_wv[i] + (nodes_[a[i]].wv - nodes_[b[i]].wv);
      const double cost = med * w_le - wv_le + (tot_wv[i] - wv_le) -
                          med * (tot_w[i] - w_le);
      // Tiny negative values can appear from float cancellation.
      cost_out[i] = std::max(cost, 0.0);
      if (median_out != nullptr) median_out[i] = med;
    }
  }

  std::vector<double> values_;   // distinct atom values, sorted
  std::vector<Node> nodes_;      // shared path-copy pool; 0 is "empty"
  std::vector<uint32_t> roots_;  // roots_[i] aggregates atoms [0, i)
  size_t pad_ = 1;               // rank universe padded to a power of two
};

}  // namespace

SegmentCostTable::SegmentCostTable(const std::vector<WeightedAtom>& atoms)
    : m_(atoms.size()), atoms_(&atoms) {
  HISTEST_CHECK_GT(m_, 0u);
  HISTEST_CHECK_LE(m_, kMaxAtoms);
  cost_.assign(m_ * m_, 0.0);
  const std::vector<double> values = DistinctSortedValues(atoms);
  Fenwick weight(values.size());
  Fenwick weighted_value(values.size());
  for (size_t s = 0; s < m_; ++s) {
    weight.Clear();
    weighted_value.Clear();
    for (size_t e = s; e < m_; ++e) {
      const WeightedAtom& a = atoms[e];
      if (a.cost_weight > 0.0) {
        const size_t r = RankOf(values, a.value);
        weight.Add(r, a.cost_weight);
        weighted_value.Add(r, a.cost_weight * a.value);
      }
      const double total_w = weight.Total();
      if (total_w <= 0.0) {
        cost_[s * m_ + e] = 0.0;
        continue;
      }
      const size_t med_rank = weight.LowerBound(0.5 * total_w);
      const double med = values[med_rank];
      const double w_le = weight.PrefixSum(med_rank);
      const double s_le = weighted_value.PrefixSum(med_rank);
      const double s_tot = weighted_value.Total();
      const double cost = med * w_le - s_le + (s_tot - s_le) -
                          med * (total_w - w_le);
      // Tiny negative values can appear from float cancellation.
      cost_[s * m_ + e] = std::max(cost, 0.0);
    }
  }
}

double SegmentCostTable::OptimalValue(size_t s, size_t e) const {
  HISTEST_CHECK(s <= e && e < m_);
  // Recompute the weighted median directly (O(len log len)); only called
  // once per reconstructed piece.
  std::vector<std::pair<double, double>> vw;
  double total_w = 0.0;
  for (size_t t = s; t <= e; ++t) {
    const WeightedAtom& a = (*atoms_)[t];
    if (a.cost_weight > 0.0) {
      vw.emplace_back(a.value, a.cost_weight);
      // analyzer-allow(raw-accumulate): running total over the filtered
      // atoms, kept in scan order to match the in-DP median computation.
      total_w += a.cost_weight;
    }
  }
  if (vw.empty()) return 0.0;
  std::sort(vw.begin(), vw.end());
  double acc = 0.0;
  for (const auto& [v, w] : vw) {
    // analyzer-allow(raw-accumulate): weighted-median prefix scan with an
    // early exit at half mass; a blocked reduction has no prefix to test.
    acc += w;
    if (acc >= 0.5 * total_w) return v;
  }
  return vw.back().first;
}

namespace {

/// Walks the parent table backwards from (levels-1, m-1) and emits the
/// fitted pieces. `total_cost` is the DP value at the final level;
/// `optimal_value(s, e)` supplies the piece constant during reconstruction.
template <typename ValueFn>
AtomFit ReconstructFit(size_t m, size_t levels, double total_cost,
                       const std::vector<std::vector<uint32_t>>& parent,
                       const ValueFn& optimal_value) {
  AtomFit fit;
  fit.l1_error = total_cost;
  std::vector<std::pair<size_t, size_t>> segments;  // [start, end] inclusive
  size_t j = levels - 1;
  size_t e = m - 1;
  while (true) {
    while (j > 0 && parent[j][e] == kNoNewPiece) --j;
    HISTEST_CHECK_NE(parent[j][e], kNoNewPiece);
    const size_t s = parent[j][e];
    segments.emplace_back(s, e);
    if (s == 0) break;
    HISTEST_CHECK_GT(j, 0u);
    e = s - 1;
    --j;
  }
  std::reverse(segments.begin(), segments.end());
  for (const auto& [s_idx, e_idx] : segments) {
    fit.piece_starts.push_back(s_idx);
    fit.piece_values.push_back(optimal_value(s_idx, e_idx));
  }
  fit.piece_starts.push_back(m);
  return fit;
}

/// Exhaustive DP over precomputed segment costs; returns the fit with <= k
/// pieces minimizing total cost. Kept as the reference engine: the fast DP
/// below must reproduce its costs and (under exact arithmetic) its
/// boundaries, including tie-breaking -- each level records the *leftmost*
/// argmin start, and only on strict improvement over the previous level.
template <typename CostFn, typename ValueFn>
AtomFit RunPieceDp(size_t m, size_t k, const CostFn& cost,
                   const ValueFn& optimal_value) {
  const size_t levels = std::min(k, m);
  std::vector<double> prev(m), cur(m);
  // parent[j][e]: start atom of the last piece at level j, or kNoNewPiece if
  // level j reuses the level j-1 solution (fewer pieces suffice).
  std::vector<std::vector<uint32_t>> parent(
      levels, std::vector<uint32_t>(m, kNoNewPiece));
  for (size_t e = 0; e < m; ++e) {
    prev[e] = cost(0, e);
    parent[0][e] = 0;
  }
  for (size_t j = 1; j < levels; ++j) {
    for (size_t e = 0; e < m; ++e) {
      double best = prev[e];
      uint32_t best_s = kNoNewPiece;
      for (size_t s = 1; s <= e; ++s) {
        const double candidate = prev[s - 1] + cost(s, e);
        if (candidate < best) {
          best = candidate;
          best_s = static_cast<uint32_t>(s);
        }
      }
      cur[e] = best;
      parent[j][e] = best_s;
    }
    std::swap(prev, cur);
  }
  return ReconstructFit(m, levels, prev[m - 1], parent, optimal_value);
}

/// One DP level computed by a cost-bounded backward window scan.
///
/// Note the interval cost w(s, e) = min_c sum w_t |v_t - c| is NOT a Monge
/// matrix on domain-ordered (unsorted) values -- e.g. values 2, 1, 5 give
/// w(0,1) + w(1,2) = 5 > w(0,2) + w(1,1) = 4 -- so SMAWK/divide-and-conquer
/// argmin restriction would return suboptimal fits. The sound structure is
/// superadditivity over concatenation: for s' < s <= e,
///   w(s', e) >= w(s', s-1) + w(s, e),
/// because the single optimal constant for [s', e] pays at least each
/// part's own minimum. Every remaining candidate at s' < s therefore
/// satisfies
///   prev[s'-1] + w(s', e) >= (prev[s'-1] + w(s', s-1)) + w(s, e)
///                         >= cur[s-1] + w(s, e),
/// since prev[s'-1] + w(s', s-1) is one of the candidates cur[s-1]
/// minimized over (the left-to-right sweep has already finalized
/// cur[s-1]). Scanning s downward from e, once that lower bound exceeds
/// the best candidate so far the scan stops — in practice after roughly
/// one optimal piece length, because cur[s-1] + w(s, e) outgrows
/// cur[e] as soon as the window spans more than one optimal piece.
/// Tie-breaking is identical to the exhaustive DP: among equal candidates
/// the smallest s wins (on a tied lower bound the scan continues, so a
/// leftmost equal candidate is never cut off), and a candidate merely
/// equal to prev[e] is never recorded.
///
/// Costs are fetched kScanBlock probes at a time through `cost4` (out[i] =
/// w(s - i, e)) so a batching oracle can overlap the probes' memory
/// latency. Probes past the stop point are computed speculatively but
/// processed strictly in scan order and discarded after the stop, so the
/// level's results are identical to the one-probe-at-a-time scan.
template <typename BatchCostFn>
void RunPrunedLevel(size_t m, const std::vector<double>& prev,
                    std::vector<double>& cur, std::vector<uint32_t>& parent_row,
                    const BatchCostFn& cost4) {
  cur[0] = prev[0];
  parent_row[0] = kNoNewPiece;
  double window4[kScanBlock];
  for (size_t e = 1; e < m; ++e) {
    double best = prev[e];
    uint32_t best_s = kNoNewPiece;
    bool stop = false;
    for (size_t s = e; s >= 1 && !stop; s -= std::min(kScanBlock, s)) {
      const size_t blk = std::min(kScanBlock, s);
      cost4(s, blk, e, window4);
      for (size_t i = 0; i < blk; ++i) {
        const size_t si = s - i;
        const double window = window4[i];
        const double candidate = prev[si - 1] + window;
        if (candidate < best) {
          best = candidate;
          best_s = static_cast<uint32_t>(si);
        } else if (ExactlyEqual(candidate, best) &&
                   best_s != kNoNewPiece) {
          best_s = static_cast<uint32_t>(si);  // leftmost among equal starts
        }
        // Remaining starts are bounded below by cur[si-1] + window; once
        // that cannot strictly beat `best` the scan stops. On an exact tie
        // it may only stop while no real candidate is recorded (a candidate
        // merely equal to prev[e] is never recorded; a recorded one must
        // yield to equal candidates further left).
        const double bound = cur[si - 1] + window;
        if (bound > best ||
            (ExactlyEqual(bound, best) && best_s == kNoNewPiece)) {
          stop = true;
          break;
        }
      }
    }
    cur[e] = best;
    parent_row[e] = best_s;
  }
}

/// Pruned DP: same recurrence, costs, and tie-breaking as RunPieceDp, but
/// each level scans only cost-bounded windows via RunPrunedLevel. Worst
/// case matches the exhaustive DP; on realistic inputs the scan stops after
/// the local optimal piece length, giving near-linear levels.
template <typename CostFn, typename BatchCostFn, typename ValueFn>
AtomFit RunPieceDpFast(size_t m, size_t k, const CostFn& cost,
                       const BatchCostFn& cost4,
                       const ValueFn& optimal_value) {
  const size_t levels = std::min(k, m);
  std::vector<double> prev(m), cur(m);
  std::vector<std::vector<uint32_t>> parent(
      levels, std::vector<uint32_t>(m, kNoNewPiece));
  for (size_t e = 0; e < m; ++e) {
    prev[e] = cost(0, e);
    parent[0][e] = 0;
  }
  for (size_t j = 1; j < levels; ++j) {
    RunPrunedLevel(m, prev, cur, parent[j], cost4);
    std::swap(prev, cur);
  }
  return ReconstructFit(m, levels, prev[m - 1], parent, optimal_value);
}

Status ValidateFitInput(const std::vector<WeightedAtom>& atoms, size_t k,
                        size_t max_atoms) {
  if (atoms.empty()) return Status::InvalidArgument("atom sequence is empty");
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (atoms.size() > max_atoms) {
    return Status::InvalidArgument(
        "atom sequence too long for exact DP (" +
        std::to_string(atoms.size()) + " > " + std::to_string(max_atoms) +
        "); coarsen with GreedyMergeAtoms first");
  }
  for (const auto& a : atoms) {
    if (!(a.length >= 1.0) || !(a.cost_weight >= 0.0) ||
        !std::isfinite(a.value)) {
      return Status::InvalidArgument("invalid atom (length < 1, negative "
                                     "weight, or non-finite value)");
    }
  }
  return Status::Ok();
}

size_t ModeAtomCap(FitDpMode mode) {
  return mode == FitDpMode::kReference ? SegmentCostTable::kMaxAtoms
                                       : kFitDpFastMaxAtoms;
}

}  // namespace

Result<AtomFit> FitAtomsL1(const std::vector<WeightedAtom>& atoms, size_t k,
                           FitDpMode mode) {
  HISTEST_RETURN_IF_ERROR(ValidateFitInput(atoms, k, ModeAtomCap(mode)));
  // When tracing is on, the DP runs with probe-counting cost oracles so the
  // fast engine's pruning can be compared against the reference's exhaustive
  // scan. The plain-lambda paths below stay untouched in disabled mode, so
  // the hot inner loops carry no counter increments.
  if (mode == FitDpMode::kReference) {
    const SegmentCostTable table(atoms);
    if (!obs::Enabled()) {
      return RunPieceDp(
          atoms.size(), k,
          [&](size_t s, size_t e) { return table.Cost(s, e); },
          [&](size_t s, size_t e) { return table.OptimalValue(s, e); });
    }
    int64_t probes = 0;
    AtomFit fit = RunPieceDp(
        atoms.size(), k,
        [&](size_t s, size_t e) {
          ++probes;
          return table.Cost(s, e);
        },
        [&](size_t s, size_t e) { return table.OptimalValue(s, e); });
    obs::AddCount(obs::names::kFitDpL1ReferenceCostProbes, probes);
    obs::AddCount(obs::names::kFitDpL1ReferenceCalls, 1);
    return fit;
  }
  const PersistentRankTree tree(atoms);
  if (!obs::Enabled()) {
    return RunPieceDpFast(
        atoms.size(), k, [&](size_t s, size_t e) { return tree.Cost(s, e); },
        [&](size_t s, size_t blk, size_t e, double* out) {
          tree.CostBlock(s, blk, e, out);
        },
        [&](size_t s, size_t e) { return tree.MedianValue(s, e); });
  }
  int64_t probes = 0;
  AtomFit fit = RunPieceDpFast(
      atoms.size(), k,
      [&](size_t s, size_t e) {
        ++probes;
        return tree.Cost(s, e);
      },
      [&](size_t s, size_t blk, size_t e, double* out) {
        probes += static_cast<int64_t>(blk);
        tree.CostBlock(s, blk, e, out);
      },
      [&](size_t s, size_t e) { return tree.MedianValue(s, e); });
  obs::AddCount(obs::names::kFitDpL1FastCostProbes, probes);
  obs::AddCount(obs::names::kFitDpL1FastCalls, 1);
  return fit;
}

Result<AtomFit> FitAtomsL2(const std::vector<WeightedAtom>& atoms, size_t k,
                           FitDpMode mode) {
  HISTEST_RETURN_IF_ERROR(ValidateFitInput(atoms, k, ModeAtomCap(mode)));
  const size_t m = atoms.size();
  // Prefix sums of weight, weight*value, weight*value^2. Both engines share
  // these O(1) segment costs; only the DP differs.
  std::vector<double> w(m + 1, 0.0), wv(m + 1, 0.0), wvv(m + 1, 0.0);
  for (size_t i = 0; i < m; ++i) {
    const double cw = atoms[i].cost_weight;
    const double v = atoms[i].value;
    w[i + 1] = w[i] + cw;
    wv[i + 1] = wv[i] + cw * v;
    wvv[i + 1] = wvv[i] + cw * v * v;
  }
  auto cost = [&](size_t s, size_t e) {
    const double sw = w[e + 1] - w[s];
    if (sw <= 0.0) return 0.0;
    const double swv = wv[e + 1] - wv[s];
    const double swvv = wvv[e + 1] - wvv[s];
    return std::max(swvv - swv * swv / sw, 0.0);
  };
  auto value = [&](size_t s, size_t e) {
    const double sw = w[e + 1] - w[s];
    return sw > 0.0 ? (wv[e + 1] - wv[s]) / sw : 0.0;
  };
  if (mode == FitDpMode::kReference) return RunPieceDp(m, k, cost, value);
  // Segment costs are O(1) here, so the batch hook is a plain loop.
  auto cost4 = [&](size_t s, size_t blk, size_t e, double* out) {
    for (size_t i = 0; i < blk; ++i) out[i] = cost(s - i, e);
  };
  return RunPieceDpFast(m, k, cost, cost4, value);
}

std::vector<WeightedAtom> AtomsFromDense(const std::vector<double>& values) {
  std::vector<WeightedAtom> atoms;
  size_t start = 0;
  for (size_t i = 1; i <= values.size(); ++i) {
    if (i == values.size() || values[i] != values[start]) {
      const double len = static_cast<double>(i - start);
      atoms.push_back(WeightedAtom{values[start], len, len});
      start = i;
    }
  }
  return atoms;
}

Result<PiecewiseConstant> FitToPiecewise(const std::vector<WeightedAtom>& atoms,
                                         const AtomFit& fit) {
  if (fit.piece_starts.size() != fit.piece_values.size() + 1) {
    return Status::InvalidArgument("malformed AtomFit");
  }
  // Element offset of each atom.
  std::vector<size_t> offsets(atoms.size() + 1, 0);
  for (size_t i = 0; i < atoms.size(); ++i) {
    offsets[i + 1] =
        offsets[i] + static_cast<size_t>(std::llround(atoms[i].length));
  }
  std::vector<PiecewiseConstant::Piece> pieces;
  for (size_t p = 0; p < fit.piece_values.size(); ++p) {
    const size_t begin = offsets[fit.piece_starts[p]];
    const size_t end = offsets[fit.piece_starts[p + 1]];
    pieces.push_back(PiecewiseConstant::Piece{Interval{begin, end},
                                              fit.piece_values[p]});
  }
  return PiecewiseConstant::Create(offsets.back(), std::move(pieces));
}

Result<DenseFitResult> FitHistogramL1(const std::vector<double>& target,
                                      size_t k) {
  const std::vector<WeightedAtom> atoms = AtomsFromDense(target);
  auto fit = FitAtomsL1(atoms, k);
  HISTEST_RETURN_IF_ERROR(fit.status());
  auto pwc = FitToPiecewise(atoms, fit.value());
  HISTEST_RETURN_IF_ERROR(pwc.status());
  return DenseFitResult{std::move(pwc).value(), fit.value().l1_error};
}

}  // namespace histest
