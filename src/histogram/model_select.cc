#include "histogram/model_select.h"

#include <algorithm>

#include "common/check.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "histogram/fit_merge.h"

namespace histest {
namespace {

/// One amplified probe: majority of `repetitions` independent tester runs.
Result<bool> ProbeK(SampleOracle& oracle, const HistogramTesterFactory& factory,
                    size_t k, int repetitions, Rng& rng) {
  int reps = std::max(repetitions, 1);
  if (reps % 2 == 0) ++reps;
  int accepts = 0;
  for (int r = 0; r < reps; ++r) {
    auto tester = factory(k, rng.Next());
    HISTEST_CHECK(tester != nullptr);
    auto outcome = tester->Test(oracle);
    HISTEST_RETURN_IF_ERROR(outcome.status());
    if (outcome.value().verdict == Verdict::kAccept) ++accepts;
  }
  return accepts * 2 > reps;
}

}  // namespace

Result<ModelSelectResult> FindSmallestAcceptedK(
    SampleOracle& oracle, const HistogramTesterFactory& factory,
    const ModelSelectOptions& options, uint64_t seed) {
  Rng rng(seed);
  const size_t max_k =
      options.max_k == 0 ? oracle.DomainSize() : options.max_k;
  if (max_k == 0) return Status::InvalidArgument("max_k must be positive");
  ModelSelectResult result;
  const int64_t drawn_before = oracle.SamplesDrawn();

  // Doubling phase.
  size_t hi = 1;
  size_t last_rejected = 0;
  bool found = false;
  while (true) {
    auto probe = ProbeK(oracle, factory, hi, options.repetitions, rng);
    HISTEST_RETURN_IF_ERROR(probe.status());
    result.probes.emplace_back(hi, probe.value());
    if (probe.value()) {
      found = true;
      break;
    }
    last_rejected = hi;
    if (hi >= max_k) break;
    hi = std::min(hi * 2, max_k);
  }
  if (!found) {
    result.k = max_k;
    result.samples_used = oracle.SamplesDrawn() - drawn_before;
    return result;
  }

  // Binary search for the smallest accepted k in (last_rejected, hi].
  size_t lo = last_rejected + 1;
  size_t best = hi;
  while (lo < best) {
    const size_t mid = lo + (best - lo) / 2;
    auto probe = ProbeK(oracle, factory, mid, options.repetitions, rng);
    HISTEST_RETURN_IF_ERROR(probe.status());
    result.probes.emplace_back(mid, probe.value());
    if (probe.value()) {
      best = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.k = best;
  result.samples_used = oracle.SamplesDrawn() - drawn_before;
  return result;
}

Result<PiecewiseConstant> LearnKHistogramFromOracle(SampleOracle& oracle,
                                                    size_t k, double eps,
                                                    double sample_constant) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (!(eps > 0.0) || eps > 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1]");
  }
  const int64_t m = CeilToCount(sample_constant * static_cast<double>(k) /
                                (eps * eps));
  const CountVector counts = oracle.DrawCounts(m);
  return LearnMergedHistogram(counts, std::min(k, oracle.DomainSize()),
                              PieceValueRule::kAverage);
}

}  // namespace histest
