#ifndef HISTEST_HISTOGRAM_BREAKPOINTS_H_
#define HISTEST_HISTOGRAM_BREAKPOINTS_H_

#include <cstddef>
#include <vector>

#include "dist/distribution.h"
#include "dist/interval.h"
#include "dist/piecewise.h"

namespace histest {

/// Breakpoints of a dense value vector: positions i in {1, .., n-1} such
/// that v[i-1] != v[i] (i.e., a new piece starts at i). A k-histogram has at
/// most k-1 of them.
std::vector<size_t> BreakpointsOf(const std::vector<double>& values);

/// Minimum number of pieces needed to represent `values` exactly
/// (= breakpoints + 1).
size_t MinPiecesOf(const std::vector<double>& values);

/// True iff the dense vector is exactly representable with at most k pieces.
bool IsKHistogramDense(const std::vector<double>& values, size_t k);

/// Indices of the partition intervals that contain at least one breakpoint
/// of `d` strictly inside them — the paper's "breakpoint intervals" (at most
/// k-1 of them when d is a k-histogram).
std::vector<size_t> BreakpointIntervalsOf(const PiecewiseConstant& d,
                                          const Partition& partition);

}  // namespace histest

#endif  // HISTEST_HISTOGRAM_BREAKPOINTS_H_
