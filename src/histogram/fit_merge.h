#ifndef HISTEST_HISTOGRAM_FIT_MERGE_H_
#define HISTEST_HISTOGRAM_FIT_MERGE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "dist/empirical.h"
#include "dist/piecewise.h"
#include "histogram/fit_dp.h"

namespace histest {

/// Result of greedily coarsening an atom sequence.
struct CoarsenResult {
  /// Coarsened atoms: each output atom covers a contiguous run of input
  /// atoms, valued at the run's weighted median, with summed length/weight.
  std::vector<WeightedAtom> atoms;
  /// Exact weighted L1 distance between the original and coarsened
  /// sequences: sum of the merged runs' weighted-median costs.
  double coarsening_error = 0.0;
};

/// Greedy bottom-up merging: repeatedly merges the adjacent segment pair
/// whose weighted-median L1 cost increases least, until at most
/// `target_count` segments remain. This is the classical histogram
/// "merging" construction ([CDSS14]/[ADLS15] style): an O(1)-approximate
/// agnostic fit whose error also certifies a coarsening bound for the exact
/// DP (see DistanceToHk).
Result<CoarsenResult> GreedyMergeAtoms(const std::vector<WeightedAtom>& atoms,
                                       size_t target_count);

/// How a learned piece's constant is chosen.
enum class PieceValueRule {
  /// Weighted median of the covered empirical values (optimal for L1).
  kMedian,
  /// Piece average (preserves each piece's total mass, so the result is
  /// already normalized when learning from a distribution).
  kAverage,
};

/// Agnostic histogram learner: builds the empirical distribution from
/// `counts`, greedily merges it down to `t` pieces, and returns the
/// normalized piecewise-constant hypothesis. With m = O(t / eps^2) samples
/// this is an O(1)-approximate agnostic L1 learner for H_t.
Result<PiecewiseConstant> LearnMergedHistogram(
    const CountVector& counts, size_t t,
    PieceValueRule rule = PieceValueRule::kAverage);

}  // namespace histest

#endif  // HISTEST_HISTOGRAM_FIT_MERGE_H_
