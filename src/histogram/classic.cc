#include "histogram/classic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "histogram/fit_dp.h"
#include "histogram/fit_merge.h"

namespace histest {
namespace {

/// Builds the mass-preserving histogram over the partition given by
/// bucket end positions.
Result<PiecewiseConstant> FromEndpoints(const Distribution& d,
                                        std::vector<size_t> ends) {
  auto partition = Partition::FromEndpoints(d.size(), std::move(ends));
  HISTEST_RETURN_IF_ERROR(partition.status());
  std::vector<double> masses;
  masses.reserve(partition.value().NumIntervals());
  for (const Interval& iv : partition.value().intervals()) {
    masses.push_back(d.MassOf(iv));
  }
  return PiecewiseConstant::FromPartitionMasses(partition.value(), masses);
}

}  // namespace

Result<PiecewiseConstant> EquiWidthHistogram(const Distribution& d, size_t k) {
  if (k == 0 || k > d.size()) {
    return Status::InvalidArgument("need 1 <= k <= n");
  }
  const Partition partition = Partition::EquiWidth(d.size(), k);
  std::vector<double> masses;
  masses.reserve(k);
  for (const Interval& iv : partition.intervals()) {
    masses.push_back(d.MassOf(iv));
  }
  return PiecewiseConstant::FromPartitionMasses(partition, masses);
}

Result<PiecewiseConstant> EquiDepthHistogram(const Distribution& d, size_t k) {
  if (k == 0 || k > d.size()) {
    return Status::InvalidArgument("need 1 <= k <= n");
  }
  const std::vector<double> cdf = d.Cdf();
  std::vector<size_t> ends;
  size_t cursor = 0;
  for (size_t bucket = 1; bucket < k; ++bucket) {
    const double target =
        static_cast<double>(bucket) / static_cast<double>(k);
    // Smallest end position whose cumulative mass reaches the quantile.
    size_t end = cursor;
    while (end < d.size() && cdf[end] < target) ++end;
    ++end;  // half-open end after the crossing element
    end = std::min(end, d.size());
    if (end > cursor && end < d.size()) {
      ends.push_back(end);
      cursor = end;
    }
  }
  ends.push_back(d.size());
  return FromEndpoints(d, std::move(ends));
}

Result<PiecewiseConstant> VOptimalHistogram(const Distribution& d, size_t k) {
  if (k == 0 || k > d.size()) {
    return Status::InvalidArgument("need 1 <= k <= n");
  }
  std::vector<WeightedAtom> atoms = AtomsFromDense(d.pmf());
  if (atoms.size() > SegmentCostTable::kMaxAtoms) {
    auto coarse = GreedyMergeAtoms(atoms, SegmentCostTable::kMaxAtoms);
    HISTEST_RETURN_IF_ERROR(coarse.status());
    atoms = std::move(coarse.value().atoms);
  }
  auto fit = FitAtomsL2(atoms, k);
  HISTEST_RETURN_IF_ERROR(fit.status());
  // Rebuild with mass-preserving piece averages of d (the L2-optimal value
  // per bucket is the mean, which is exactly the bucket mass spread
  // uniformly).
  std::vector<size_t> offsets(atoms.size() + 1, 0);
  for (size_t i = 0; i < atoms.size(); ++i) {
    offsets[i + 1] =
        offsets[i] + static_cast<size_t>(std::llround(atoms[i].length));
  }
  std::vector<size_t> ends;
  const AtomFit& f = fit.value();
  for (size_t p = 1; p <= f.piece_values.size(); ++p) {
    ends.push_back(offsets[f.piece_starts[p]]);
  }
  return FromEndpoints(d, std::move(ends));
}

}  // namespace histest
