#include "histogram/distance_to_hk.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/kernels.h"
#include "common/math_util.h"
#include "histogram/fit_dp.h"
#include "histogram/fit_merge.h"

namespace histest {
namespace {

/// Coarsens `atoms` to fit the DP limit if needed; returns the (possibly
/// identical) sequence plus the exact coarsening L1 error.
Result<CoarsenResult> MaybeCoarsen(std::vector<WeightedAtom> atoms,
                                   size_t limit) {
  if (atoms.size() <= limit) {
    return CoarsenResult{std::move(atoms), 0.0};
  }
  return GreedyMergeAtoms(atoms, limit);
}

/// Element offset of each atom (offsets[i] = first domain element of atom i;
/// one trailing entry equal to the domain size).
std::vector<size_t> AtomOffsets(const std::vector<WeightedAtom>& atoms) {
  std::vector<size_t> offsets(atoms.size() + 1, 0);
  for (size_t i = 0; i < atoms.size(); ++i) {
    offsets[i + 1] =
        offsets[i] + static_cast<size_t>(std::llround(atoms[i].length));
  }
  return offsets;
}

/// L1 distance between a run-length-compressed target (atoms `orig` with
/// element offsets `orig_offsets`) and a piecewise-constant candidate given
/// by element boundaries `piece_bounds` (size P+1) and values
/// `piece_values` (size P). Both partitions cover the same domain. A single
/// merged two-pointer sweep: O(|orig| + P) instead of O(n), with a fixed
/// left-to-right summation order.
double PiecewiseCandidateL1(const std::vector<WeightedAtom>& orig,
                            const std::vector<size_t>& orig_offsets,
                            const std::vector<size_t>& piece_bounds,
                            const std::vector<double>& piece_values) {
  KahanSum sum;
  size_t t = 0;    // original-atom cursor
  size_t pos = 0;  // domain element cursor
  for (size_t p = 0; p < piece_values.size(); ++p) {
    const size_t end = piece_bounds[p + 1];
    while (pos < end) {
      while (orig_offsets[t + 1] <= pos) ++t;
      const size_t next = std::min(end, orig_offsets[t + 1]);
      sum.Add(static_cast<double>(next - pos) *
              std::fabs(orig[t].value - piece_values[p]));
      pos = next;
    }
  }
  return sum.Total();
}

/// Weighted-median L1 cost of atoms [begin, end) — the "oscillation" a
/// breakpoint-free piece must pay on that range. `scratch` is caller-owned
/// storage reused across groups (the witness scan calls this once per
/// group); atom values arriving already non-decreasing (common for
/// monotone-ish hypotheses) skip the sort entirely.
double GroupOscillation(const std::vector<WeightedAtom>& atoms, size_t begin,
                        size_t end,
                        std::vector<std::pair<double, double>>& scratch) {
  scratch.clear();
  double total_w = 0.0;
  bool presorted = true;
  for (size_t t = begin; t < end; ++t) {
    if (atoms[t].cost_weight > 0.0) {
      if (!scratch.empty() && atoms[t].value < scratch.back().first) {
        presorted = false;
      }
      scratch.emplace_back(atoms[t].value, atoms[t].cost_weight);
      // analyzer-allow(raw-accumulate): running total alongside the filtered
      // copy; must accumulate in the same order as the reference DP so the
      // fast==reference bit-exactness tests keep holding.
      total_w += atoms[t].cost_weight;
    }
  }
  if (scratch.empty()) return 0.0;
  if (!presorted) std::sort(scratch.begin(), scratch.end());
  double acc = 0.0;
  double med = scratch.back().first;
  for (const auto& [v, w] : scratch) {
    // analyzer-allow(raw-accumulate): weighted-median prefix scan with an
    // early exit at half mass; a blocked reduction has no prefix to test.
    acc += w;
    if (acc >= 0.5 * total_w) {
      med = v;
      break;
    }
  }
  KahanSum cost;
  for (const auto& [v, w] : scratch) cost.Add(w * std::fabs(v - med));
  return cost.Total();
}

/// Witness lower bound on d_TV to any k-piece function, robust to long
/// atom sequences (no coarsening involved): chunk the atoms into disjoint
/// consecutive groups; a k-piece function has breakpoints inside at most
/// k - 1 groups and pays at least the oscillation of every other group.
/// Dropping the k largest oscillations is therefore safe. Maximized over a
/// few group widths.
double WitnessLowerBoundTv(const std::vector<WeightedAtom>& atoms, size_t k) {
  double best = 0.0;
  std::vector<std::pair<double, double>> scratch;
  std::vector<double> oscillations;
  for (const size_t width : {size_t{2}, size_t{4}, size_t{8}}) {
    if (atoms.size() < width) continue;
    scratch.reserve(width);
    oscillations.clear();
    for (size_t start = 0; start + width <= atoms.size(); start += width) {
      oscillations.push_back(
          GroupOscillation(atoms, start, start + width, scratch));
    }
    std::sort(oscillations.begin(), oscillations.end(),
              std::greater<double>());
    KahanSum sum;
    for (size_t j = std::min(oscillations.size(), k); j < oscillations.size();
         ++j) {
      sum.Add(oscillations[j]);
    }
    best = std::max(best, 0.5 * sum.Total());
  }
  return best;
}

}  // namespace

Result<DistanceBounds> DistanceToHk(const Distribution& d, size_t k,
                                    const HkDistanceOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const std::vector<WeightedAtom> orig_atoms = AtomsFromDense(d.pmf());
  // The witness bound is computed on the uncoarsened sequence: it stays
  // informative even when the coarsening error drowns the DP-based bound
  // (fine alternating patterns).
  const double witness = WitnessLowerBoundTv(orig_atoms, k);
  // Coarsen in place only when needed; the fast path keeps the original
  // sequence alive for the piecewise candidate evaluation below.
  CoarsenResult coarse_storage;
  const std::vector<WeightedAtom>* dp_atoms = &orig_atoms;
  double slack = 0.0;
  if (orig_atoms.size() > options.dp_atom_limit) {
    auto coarse = GreedyMergeAtoms(orig_atoms, options.dp_atom_limit);
    HISTEST_RETURN_IF_ERROR(coarse.status());
    coarse_storage = std::move(coarse).value();
    dp_atoms = &coarse_storage.atoms;
    slack = coarse_storage.coarsening_error;
  }

  auto fit = FitAtomsL1(*dp_atoms, k, options.mode);
  HISTEST_RETURN_IF_ERROR(fit.status());

  // Lower bound: any D* in H_k is a non-negative k-piece function, so its L1
  // distance to d is at least the unconstrained DP optimum (minus the
  // coarsening slack when the DP ran on the coarsened sequence), and at
  // least the witness oscillation bound.
  const double lower =
      std::max(witness, 0.5 * (fit.value().l1_error - 2.0 * slack));

  // Upper bound: exact TV to an explicit H_k member. Candidate (a):
  // mass-preserving averages over the fitted piece spans (always a valid
  // distribution). Candidate (b): the median-valued fit, renormalized, when
  // it has positive mass.
  double upper;
  if (options.mode == FitDpMode::kReference) {
    // Dense evaluation over the full domain, single-pass fused: each
    // candidate is handed to the kernel as (piece value, piece end) runs,
    // expanded in-register against d's pmf, so no O(n) candidate vector is
    // ever materialized. Bit-identical to the former
    // densify-then-L1Distance path: per-piece masses accumulate in the same
    // KahanSum order as the dense scan did, and the fused kernel takes the
    // unfused kernel's exact blocked summation order (|cand - d| vs
    // |d - cand| under fabs is negation-exact).
    const AtomFit& f = fit.value();
    const std::vector<size_t> dp_offsets = AtomOffsets(*dp_atoms);
    const size_t num_pieces = f.piece_values.size();
    std::vector<size_t> bounds(num_pieces + 1);
    for (size_t p = 0; p <= num_pieces; ++p) {
      bounds[p] = dp_offsets[f.piece_starts[p]];
    }
    const std::vector<double>& pmf = d.pmf();
    std::vector<double> avg_values(num_pieces);
    for (size_t p = 0; p < num_pieces; ++p) {
      KahanSum mass;
      for (size_t i = bounds[p]; i < bounds[p + 1]; ++i) mass.Add(pmf[i]);
      avg_values[p] =
          mass.Total() / static_cast<double>(bounds[p + 1] - bounds[p]);
    }
    upper = 0.5 * FusedExpandL1Kernel(avg_values.data(), bounds.data() + 1,
                                      num_pieces, pmf.data(), pmf.size());
    // med_mass replicates the former SumOf over the densified candidate
    // (a plain per-element KahanSum), adding each piece value once per
    // covered element, so the normalization divisor is unchanged.
    KahanSum med_mass_acc;
    for (size_t p = 0; p < num_pieces; ++p) {
      const double v = f.piece_values[p];
      for (size_t i = bounds[p]; i < bounds[p + 1]; ++i) med_mass_acc.Add(v);
    }
    const double med_mass = med_mass_acc.Total();
    if (med_mass > 0.0) {
      std::vector<double> med_values(num_pieces);
      for (size_t p = 0; p < num_pieces; ++p) {
        med_values[p] = f.piece_values[p] / med_mass;
      }
      upper = std::min(
          upper, 0.5 * FusedExpandL1Kernel(med_values.data(),
                                           bounds.data() + 1, num_pieces,
                                           pmf.data(), pmf.size()));
    }
  } else {
    // Piecewise evaluation: piece spans in element coordinates come from
    // the DP-atom offsets; piece masses are O(1) via the shared prefix
    // index; each candidate's L1 to d is one two-pointer sweep over the
    // run-length-compressed target. No O(n) candidate vectors.
    const AtomFit& f = fit.value();
    const std::vector<size_t> orig_offsets = AtomOffsets(orig_atoms);
    const std::vector<size_t> dp_offsets = AtomOffsets(*dp_atoms);
    const size_t num_pieces = f.piece_values.size();
    std::vector<size_t> bounds(num_pieces + 1);
    for (size_t p = 0; p <= num_pieces; ++p) {
      bounds[p] = dp_offsets[f.piece_starts[p]];
    }
    const PrefixMassIndex& index = d.PrefixIndex();
    std::vector<double> avg_values(num_pieces);
    for (size_t p = 0; p < num_pieces; ++p) {
      avg_values[p] = index.MassOf(Interval{bounds[p], bounds[p + 1]}) /
                      static_cast<double>(bounds[p + 1] - bounds[p]);
    }
    upper = 0.5 * PiecewiseCandidateL1(orig_atoms, orig_offsets, bounds,
                                       avg_values);
    KahanSum med_mass_acc;
    for (size_t p = 0; p < num_pieces; ++p) {
      med_mass_acc.Add(static_cast<double>(bounds[p + 1] - bounds[p]) *
                       f.piece_values[p]);
    }
    const double med_mass = med_mass_acc.Total();
    if (med_mass > 0.0) {
      std::vector<double> med_values(num_pieces);
      for (size_t p = 0; p < num_pieces; ++p) {
        med_values[p] = f.piece_values[p] / med_mass;
      }
      upper = std::min(upper, 0.5 * PiecewiseCandidateL1(
                                        orig_atoms, orig_offsets, bounds,
                                        med_values));
    }
  }
  HISTEST_CHECK_GE(upper + 1e-12, lower);
  return DistanceBounds{lower, upper};
}

Result<std::vector<WeightedAtom>> BuildSubdomainAtoms(
    const PiecewiseConstant& dhat, const std::vector<Interval>& kept) {
  const size_t n = dhat.domain_size();
  // Validate kept intervals: sorted, disjoint, in range.
  size_t cursor = 0;
  for (const Interval& iv : kept) {
    if (iv.begin < cursor || iv.end > n || iv.empty()) {
      return Status::InvalidArgument(
          "kept intervals must be sorted, disjoint, non-empty sub-intervals");
    }
    cursor = iv.end;
  }

  // Build the atom sequence: dhat's pieces intersected with kept intervals
  // (cost weight = length) and with gaps (cost weight = 0). Adjacent atoms
  // of the same kind and value merge on the fly.
  std::vector<WeightedAtom> atoms;
  auto add_atom = [&atoms](double value, size_t len, bool is_kept) {
    if (len == 0) return;
    const double length = static_cast<double>(len);
    const double weight = is_kept ? length : 0.0;
    if (!atoms.empty() && ExactlyEqual(atoms.back().value, value) &&
        (atoms.back().cost_weight > 0.0) == is_kept) {
      atoms.back().length += length;
      atoms.back().cost_weight += weight;
      return;
    }
    atoms.push_back(WeightedAtom{value, length, weight});
  };
  size_t kept_idx = 0;
  for (const auto& piece : dhat.pieces()) {
    size_t pos = piece.interval.begin;
    while (pos < piece.interval.end) {
      // Advance past kept intervals that end at or before pos.
      while (kept_idx < kept.size() && kept[kept_idx].end <= pos) ++kept_idx;
      size_t next;
      bool is_kept;
      if (kept_idx < kept.size() && kept[kept_idx].begin <= pos) {
        is_kept = true;
        next = std::min(piece.interval.end, kept[kept_idx].end);
      } else {
        is_kept = false;
        const size_t gap_end =
            kept_idx < kept.size() ? kept[kept_idx].begin : n;
        next = std::min(piece.interval.end, gap_end);
      }
      add_atom(piece.value, next - pos, is_kept);
      pos = next;
    }
  }
  return atoms;
}

Result<DistanceBounds> RestrictedDistanceToHkPieces(
    const PiecewiseConstant& dhat, const std::vector<Interval>& kept, size_t k,
    const HkDistanceOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  auto built = BuildSubdomainAtoms(dhat, kept);
  HISTEST_RETURN_IF_ERROR(built.status());
  std::vector<WeightedAtom> atoms = std::move(built).value();

  const double witness = WitnessLowerBoundTv(atoms, k);
  auto coarse = MaybeCoarsen(std::move(atoms), options.dp_atom_limit);
  HISTEST_RETURN_IF_ERROR(coarse.status());
  const double slack = coarse.value().coarsening_error;
  auto fit = FitAtomsL1(coarse.value().atoms, k, options.mode);
  HISTEST_RETURN_IF_ERROR(fit.status());
  const double dist = 0.5 * fit.value().l1_error;
  return DistanceBounds{std::max(witness, dist - slack), dist + slack};
}

}  // namespace histest
