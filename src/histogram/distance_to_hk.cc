#include "histogram/distance_to_hk.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "dist/distance.h"
#include "histogram/fit_dp.h"
#include "histogram/fit_merge.h"

namespace histest {
namespace {

/// Coarsens `atoms` to fit the DP limit if needed; returns the (possibly
/// identical) sequence plus the exact coarsening L1 error.
Result<CoarsenResult> MaybeCoarsen(std::vector<WeightedAtom> atoms,
                                   size_t limit) {
  if (atoms.size() <= limit) {
    return CoarsenResult{std::move(atoms), 0.0};
  }
  return GreedyMergeAtoms(atoms, limit);
}

/// Expands an AtomFit into a dense value vector over the original domain.
std::vector<double> FitToDense(const std::vector<WeightedAtom>& atoms,
                               const AtomFit& fit) {
  std::vector<double> out;
  size_t atom_idx = 0;
  for (size_t p = 0; p < fit.piece_values.size(); ++p) {
    for (; atom_idx < fit.piece_starts[p + 1]; ++atom_idx) {
      const size_t len =
          static_cast<size_t>(std::llround(atoms[atom_idx].length));
      out.insert(out.end(), len, fit.piece_values[p]);
    }
  }
  return out;
}

/// Per-piece average values of `d` over the fit's piece spans — a
/// mass-preserving k-piece candidate (total mass exactly 1).
std::vector<double> AverageValuedCandidate(const Distribution& d,
                                           const std::vector<WeightedAtom>& atoms,
                                           const AtomFit& fit) {
  std::vector<double> out(d.size());
  // Element offsets of atoms.
  std::vector<size_t> offsets(atoms.size() + 1, 0);
  for (size_t i = 0; i < atoms.size(); ++i) {
    offsets[i + 1] =
        offsets[i] + static_cast<size_t>(std::llround(atoms[i].length));
  }
  for (size_t p = 0; p < fit.piece_values.size(); ++p) {
    const size_t begin = offsets[fit.piece_starts[p]];
    const size_t end = offsets[fit.piece_starts[p + 1]];
    KahanSum mass;
    for (size_t i = begin; i < end; ++i) mass.Add(d[i]);
    const double avg = mass.Total() / static_cast<double>(end - begin);
    for (size_t i = begin; i < end; ++i) out[i] = avg;
  }
  return out;
}

/// Weighted-median L1 cost of atoms [begin, end) — the "oscillation" a
/// breakpoint-free piece must pay on that range.
double GroupOscillation(const std::vector<WeightedAtom>& atoms, size_t begin,
                        size_t end) {
  std::vector<std::pair<double, double>> vw;
  double total_w = 0.0;
  for (size_t t = begin; t < end; ++t) {
    if (atoms[t].cost_weight > 0.0) {
      vw.emplace_back(atoms[t].value, atoms[t].cost_weight);
      total_w += atoms[t].cost_weight;
    }
  }
  if (vw.empty()) return 0.0;
  std::sort(vw.begin(), vw.end());
  double acc = 0.0;
  double med = vw.back().first;
  for (const auto& [v, w] : vw) {
    acc += w;
    if (acc >= 0.5 * total_w) {
      med = v;
      break;
    }
  }
  KahanSum cost;
  for (const auto& [v, w] : vw) cost.Add(w * std::fabs(v - med));
  return cost.Total();
}

/// Witness lower bound on d_TV to any k-piece function, robust to long
/// atom sequences (no coarsening involved): chunk the atoms into disjoint
/// consecutive groups; a k-piece function has breakpoints inside at most
/// k - 1 groups and pays at least the oscillation of every other group.
/// Dropping the k largest oscillations is therefore safe. Maximized over a
/// few group widths.
double WitnessLowerBoundTv(const std::vector<WeightedAtom>& atoms, size_t k) {
  double best = 0.0;
  for (const size_t width : {size_t{2}, size_t{4}, size_t{8}}) {
    if (atoms.size() < width) continue;
    std::vector<double> oscillations;
    for (size_t start = 0; start + width <= atoms.size(); start += width) {
      oscillations.push_back(GroupOscillation(atoms, start, start + width));
    }
    std::sort(oscillations.begin(), oscillations.end(),
              std::greater<double>());
    KahanSum sum;
    for (size_t j = std::min(oscillations.size(), k); j < oscillations.size();
         ++j) {
      sum.Add(oscillations[j]);
    }
    best = std::max(best, 0.5 * sum.Total());
  }
  return best;
}

}  // namespace

Result<DistanceBounds> DistanceToHk(const Distribution& d, size_t k,
                                    const HkDistanceOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  std::vector<WeightedAtom> atoms = AtomsFromDense(d.pmf());
  // The witness bound is computed on the uncoarsened sequence: it stays
  // informative even when the coarsening error drowns the DP-based bound
  // (fine alternating patterns).
  const double witness = WitnessLowerBoundTv(atoms, k);
  auto coarse = MaybeCoarsen(std::move(atoms), options.dp_atom_limit);
  HISTEST_RETURN_IF_ERROR(coarse.status());
  const std::vector<WeightedAtom>& dp_atoms = coarse.value().atoms;
  const double slack = coarse.value().coarsening_error;

  auto fit = FitAtomsL1(dp_atoms, k);
  HISTEST_RETURN_IF_ERROR(fit.status());

  // Lower bound: any D* in H_k is a non-negative k-piece function, so its L1
  // distance to d is at least the unconstrained DP optimum (minus the
  // coarsening slack when the DP ran on the coarsened sequence), and at
  // least the witness oscillation bound.
  const double lower =
      std::max(witness, 0.5 * (fit.value().l1_error - 2.0 * slack));

  // Upper bound: exact TV to an explicit H_k member. Candidate (a):
  // mass-preserving averages over the fitted piece spans (always a valid
  // distribution). Candidate (b): the median-valued fit, renormalized, when
  // it has positive mass.
  const std::vector<double> avg_candidate =
      AverageValuedCandidate(d, dp_atoms, fit.value());
  double upper = 0.5 * L1Distance(d.pmf(), avg_candidate);

  std::vector<double> med_candidate = FitToDense(dp_atoms, fit.value());
  const double med_mass = SumOf(med_candidate);
  if (med_mass > 0.0) {
    for (double& v : med_candidate) v /= med_mass;
    upper = std::min(upper, 0.5 * L1Distance(d.pmf(), med_candidate));
  }
  HISTEST_CHECK_GE(upper + 1e-12, lower);
  return DistanceBounds{lower, upper};
}

Result<std::vector<WeightedAtom>> BuildSubdomainAtoms(
    const PiecewiseConstant& dhat, const std::vector<Interval>& kept) {
  const size_t n = dhat.domain_size();
  // Validate kept intervals: sorted, disjoint, in range.
  size_t cursor = 0;
  for (const Interval& iv : kept) {
    if (iv.begin < cursor || iv.end > n || iv.empty()) {
      return Status::InvalidArgument(
          "kept intervals must be sorted, disjoint, non-empty sub-intervals");
    }
    cursor = iv.end;
  }

  // Build the atom sequence: dhat's pieces intersected with kept intervals
  // (cost weight = length) and with gaps (cost weight = 0). Adjacent atoms
  // of the same kind and value merge on the fly.
  std::vector<WeightedAtom> atoms;
  auto add_atom = [&atoms](double value, size_t len, bool is_kept) {
    if (len == 0) return;
    const double length = static_cast<double>(len);
    const double weight = is_kept ? length : 0.0;
    if (!atoms.empty() && atoms.back().value == value &&
        (atoms.back().cost_weight > 0.0) == is_kept) {
      atoms.back().length += length;
      atoms.back().cost_weight += weight;
      return;
    }
    atoms.push_back(WeightedAtom{value, length, weight});
  };
  size_t kept_idx = 0;
  for (const auto& piece : dhat.pieces()) {
    size_t pos = piece.interval.begin;
    while (pos < piece.interval.end) {
      // Advance past kept intervals that end at or before pos.
      while (kept_idx < kept.size() && kept[kept_idx].end <= pos) ++kept_idx;
      size_t next;
      bool is_kept;
      if (kept_idx < kept.size() && kept[kept_idx].begin <= pos) {
        is_kept = true;
        next = std::min(piece.interval.end, kept[kept_idx].end);
      } else {
        is_kept = false;
        const size_t gap_end =
            kept_idx < kept.size() ? kept[kept_idx].begin : n;
        next = std::min(piece.interval.end, gap_end);
      }
      add_atom(piece.value, next - pos, is_kept);
      pos = next;
    }
  }
  return atoms;
}

Result<DistanceBounds> RestrictedDistanceToHkPieces(
    const PiecewiseConstant& dhat, const std::vector<Interval>& kept, size_t k,
    const HkDistanceOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  auto built = BuildSubdomainAtoms(dhat, kept);
  HISTEST_RETURN_IF_ERROR(built.status());
  std::vector<WeightedAtom> atoms = std::move(built).value();

  const double witness = WitnessLowerBoundTv(atoms, k);
  auto coarse = MaybeCoarsen(std::move(atoms), options.dp_atom_limit);
  HISTEST_RETURN_IF_ERROR(coarse.status());
  const double slack = coarse.value().coarsening_error;
  auto fit = FitAtomsL1(coarse.value().atoms, k);
  HISTEST_RETURN_IF_ERROR(fit.status());
  const double dist = 0.5 * fit.value().l1_error;
  return DistanceBounds{std::max(witness, dist - slack), dist + slack};
}

}  // namespace histest
