#include "histogram/modality.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"
#include "histogram/fit_merge.h"

namespace histest {
namespace {

/// A PAVA block: a maximal run fitted to one constant (its weighted
/// median), stored as a value-sorted multiset for exact L1 costs.
struct Block {
  std::vector<std::pair<double, double>> sorted_vw;
  double weight = 0.0;
  double median = 0.0;
  double cost = 0.0;
};

void Recompute(Block& block) {
  double acc = 0.0;
  block.median = block.sorted_vw.back().first;
  for (const auto& [v, w] : block.sorted_vw) {
    // analyzer-allow(raw-accumulate): weighted-median prefix scan with an
    // early exit at half mass; a blocked reduction has no prefix to test.
    acc += w;
    if (acc >= 0.5 * block.weight) {
      block.median = v;
      break;
    }
  }
  KahanSum cost;
  for (const auto& [v, w] : block.sorted_vw) {
    cost.Add(w * std::fabs(v - block.median));
  }
  block.cost = cost.Total();
}

/// Incremental weighted PAVA: stack of monotone blocks; appending an
/// element merges from the right while block medians violate
/// non-decreasing order. Zero-weight (gap) entries are free.
class PavaStack {
 public:
  void Append(double value, double weight) {
    if (weight <= 0.0) return;  // gaps never constrain a monotone fit
    Block fresh;
    fresh.sorted_vw = {{value, weight}};
    fresh.weight = weight;
    fresh.median = value;
    fresh.cost = 0.0;
    stack_.push_back(std::move(fresh));
    while (stack_.size() >= 2 &&
           stack_[stack_.size() - 2].median > stack_.back().median) {
      Block top = std::move(stack_.back());
      stack_.pop_back();
      Block& below = stack_.back();
      // analyzer-allow(raw-accumulate): incremental PAVA cost maintenance;
      // merged block costs are swapped in and out as the stack collapses.
      total_ -= top.cost + below.cost;
      std::vector<std::pair<double, double>> merged;
      merged.reserve(below.sorted_vw.size() + top.sorted_vw.size());
      std::merge(below.sorted_vw.begin(), below.sorted_vw.end(),
                 top.sorted_vw.begin(), top.sorted_vw.end(),
                 std::back_inserter(merged));
      below.sorted_vw = std::move(merged);
      below.weight += top.weight;
      Recompute(below);
      // analyzer-allow(raw-accumulate): incremental PAVA cost maintenance;
      // merged block costs are swapped in and out as the stack collapses.
      total_ += below.cost;
    }
  }

  double total() const { return total_; }

 private:
  std::vector<Block> stack_;
  double total_ = 0.0;
};

/// All-pairs isotonic (non-decreasing) fit costs over weighted entries,
/// stored flat: Cost(i, j) covers entries [i, j].
class IsotonicCostTable {
 public:
  explicit IsotonicCostTable(
      const std::vector<std::pair<double, double>>& vw)
      : m_(vw.size()), cost_(m_ * m_, 0.0) {
    for (size_t i = 0; i < m_; ++i) {
      PavaStack pava;
      for (size_t j = i; j < m_; ++j) {
        pava.Append(vw[j].first, vw[j].second);
        cost_[i * m_ + j] = pava.total();
      }
    }
  }

  double Cost(size_t i, size_t j) const { return cost_[i * m_ + j]; }

 private:
  size_t m_;
  std::vector<double> cost_;
};

/// Best-fit error with at most `runs` alternating monotone runs, given
/// increasing/decreasing segment-cost callables over m entries.
template <typename IncFn, typename DecFn>
double RunKModalDp(size_t m, size_t runs, const IncFn& inc,
                   const DecFn& dec) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(2, std::vector<double>(m + 1, kInf));
  for (size_t j = 1; j <= m; ++j) {
    dp[0][j] = inc(0, j - 1);
    dp[1][j] = dec(0, j - 1);
  }
  double best = std::min(dp[0][m], dp[1][m]);
  std::vector<std::vector<double>> next(2, std::vector<double>(m + 1, kInf));
  for (size_t r = 2; r <= runs; ++r) {
    for (auto& row : next) std::fill(row.begin(), row.end(), kInf);
    for (size_t j = 1; j <= m; ++j) {
      for (size_t s = 1; s < j; ++s) {
        if (dp[1][s] < kInf) {
          next[0][j] = std::min(next[0][j], dp[1][s] + inc(s, j - 1));
        }
        if (dp[0][s] < kInf) {
          next[1][j] = std::min(next[1][j], dp[0][s] + dec(s, j - 1));
        }
      }
      next[0][j] = std::min(next[0][j], dp[0][j]);
      next[1][j] = std::min(next[1][j], dp[1][j]);
    }
    dp.swap(next);
    best = std::min(best, std::min(dp[0][m], dp[1][m]));
  }
  return best;
}

/// Exact k-modal fit error over weighted (value, weight) entries.
double KModalErrorOfEntries(const std::vector<std::pair<double, double>>& vw,
                            size_t max_changes) {
  const size_t m = vw.size();
  const IsotonicCostTable inc_table(vw);
  std::vector<std::pair<double, double>> reversed(vw.rbegin(), vw.rend());
  const IsotonicCostTable dec_rev(reversed);
  auto inc = [&](size_t i, size_t j) { return inc_table.Cost(i, j); };
  auto dec = [&](size_t i, size_t j) {
    return dec_rev.Cost(m - 1 - j, m - 1 - i);
  };
  return RunKModalDp(m, std::min(max_changes + 1, m), inc, dec);
}

/// One-direction isotonic cost of a short run of entries.
double IsotonicCostOfRange(
    const std::vector<std::pair<double, double>>& vw, size_t begin,
    size_t end, bool increasing) {
  PavaStack pava;
  if (increasing) {
    for (size_t t = begin; t < end; ++t) pava.Append(vw[t].first, vw[t].second);
  } else {
    for (size_t t = end; t > begin; --t) {
      pava.Append(vw[t - 1].first, vw[t - 1].second);
    }
  }
  return pava.total();
}

/// Modal witness lower bound (TV units): chunk entries into disjoint
/// groups; a <= c direction-change function is monotone on all but c
/// groups, and a monotone function pays at least the group's cheaper
/// isotonic fit cost.
double KModalWitnessTv(const std::vector<std::pair<double, double>>& vw,
                       size_t max_changes) {
  double best = 0.0;
  for (const size_t width : {size_t{4}, size_t{8}, size_t{16}}) {
    if (vw.size() < width) continue;
    std::vector<double> costs;
    for (size_t start = 0; start + width <= vw.size(); start += width) {
      costs.push_back(
          std::min(IsotonicCostOfRange(vw, start, start + width, true),
                   IsotonicCostOfRange(vw, start, start + width, false)));
    }
    std::sort(costs.begin(), costs.end(), std::greater<double>());
    KahanSum sum;
    for (size_t g = std::min(costs.size(), max_changes); g < costs.size();
         ++g) {
      sum.Add(costs[g]);
    }
    best = std::max(best, 0.5 * sum.Total());
  }
  return best;
}

std::vector<std::pair<double, double>> EntriesFromAtoms(
    const std::vector<WeightedAtom>& atoms) {
  std::vector<std::pair<double, double>> vw;
  vw.reserve(atoms.size());
  for (const auto& a : atoms) vw.emplace_back(a.value, a.cost_weight);
  return vw;
}

}  // namespace

size_t DirectionChanges(const std::vector<double>& values) {
  size_t changes = 0;
  int direction = 0;  // 0 = undetermined, +1 = rising, -1 = falling
  for (size_t i = 1; i < values.size(); ++i) {
    const double step = values[i] - values[i - 1];
    if (ExactlyEqual(step, 0.0)) continue;
    const int d = step > 0.0 ? 1 : -1;
    if (direction != 0 && d != direction) ++changes;
    direction = d;
  }
  return changes;
}

bool IsKModalDense(const std::vector<double>& values, size_t k) {
  return DirectionChanges(values) <= k;
}

Result<double> KModalFitError(const std::vector<double>& values,
                              size_t max_changes) {
  if (values.empty()) return Status::InvalidArgument("values must be non-empty");
  if (values.size() > kMaxKModalInput) {
    return Status::InvalidArgument(
        "input too long for the exact k-modal DP (" +
        std::to_string(values.size()) + " > " +
        std::to_string(kMaxKModalInput) + ")");
  }
  std::vector<std::pair<double, double>> vw;
  vw.reserve(values.size());
  for (double v : values) vw.emplace_back(v, 1.0);
  return KModalErrorOfEntries(vw, max_changes);
}

Result<double> KModalFitErrorAtoms(const std::vector<WeightedAtom>& atoms,
                                   size_t max_changes) {
  if (atoms.empty()) return Status::InvalidArgument("atoms must be non-empty");
  if (atoms.size() > kMaxKModalInput) {
    return Status::InvalidArgument(
        "atom sequence too long for the exact k-modal DP (" +
        std::to_string(atoms.size()) + " > " +
        std::to_string(kMaxKModalInput) + "); coarsen first");
  }
  return KModalErrorOfEntries(EntriesFromAtoms(atoms), max_changes);
}

Result<double> DistanceToKModalLowerBound(const Distribution& d, size_t k) {
  auto error = KModalFitError(d.pmf(), k);
  HISTEST_RETURN_IF_ERROR(error.status());
  return 0.5 * error.value();
}

Result<DistanceBounds> RestrictedDistanceToKModal(
    const PiecewiseConstant& dhat, const std::vector<Interval>& kept,
    size_t max_changes, size_t coarsen_limit) {
  if (coarsen_limit == 0 || coarsen_limit > kMaxKModalInput) {
    return Status::InvalidArgument("coarsen_limit must be in [1, " +
                                   std::to_string(kMaxKModalInput) + "]");
  }
  auto atoms = BuildSubdomainAtoms(dhat, kept);
  HISTEST_RETURN_IF_ERROR(atoms.status());
  const double witness = KModalWitnessTv(EntriesFromAtoms(atoms.value()),
                                         max_changes);
  double slack = 0.0;
  std::vector<WeightedAtom> dp_atoms = std::move(atoms).value();
  if (dp_atoms.size() > coarsen_limit) {
    auto coarse = GreedyMergeAtoms(dp_atoms, coarsen_limit);
    HISTEST_RETURN_IF_ERROR(coarse.status());
    slack = coarse.value().coarsening_error;
    dp_atoms = std::move(coarse.value().atoms);
  }
  auto error = KModalFitErrorAtoms(dp_atoms, max_changes);
  HISTEST_RETURN_IF_ERROR(error.status());
  const double dist = 0.5 * error.value();
  return DistanceBounds{std::max(witness, dist - slack), dist + slack};
}

}  // namespace histest
