#ifndef HISTEST_OBS_NAMES_H_
#define HISTEST_OBS_NAMES_H_

/// Single source of truth for every metric, gauge, histogram, and trace-span
/// name the library emits.
///
/// Instrumentation call sites (obs::AddCount / SetGauge / ObserveHistogram,
/// TraceSpan and ScopedTimer constructors) must use the constants defined
/// here — the obs-name-discipline analyzer checker bans free-form string
/// literals at those sites, so a typo can no longer fork a counter into two
/// names that tooling silently treats as different metrics.
///
/// The X-macro list below is machine-readable: tools/obs_names.py parses
/// this header (entries, SIMD variant/kernel lists, and the tally-name
/// pattern) and feeds tools/trace_gate.py (unknown-name CI gate),
/// tools/histest-trace (advisory name validation), and
/// tools/gen_obs_names_table.py (the generated DESIGN.md table, kept in
/// sync by CI). Edit names HERE and nowhere else.
///
/// Entry format: X(ident, "name", kind, "description") where kind is one of
/// counter | gauge | histogram | span.

// clang-format off
#define HISTEST_OBS_NAMES(X)                                                   \
  /* ---- thread pool (src/benchutil/parallel.cc) ---- */                      \
  X(kPoolRuns, "histest.pool.runs", counter,                                   \
    "ThreadPool::Run invocations")                                             \
  X(kPoolJobs, "histest.pool.jobs", counter,                                   \
    "jobs submitted across all ThreadPool::Run calls")                         \
  X(kPoolRunSeconds, "histest.pool.run_seconds", histogram,                    \
    "wall seconds per ThreadPool::Run (ScopedTimer)")                          \
  X(kPoolQueueDepth, "histest.pool.queue_depth", gauge,                        \
    "tasks currently queued on the shared pool")                               \
  X(kPoolWorkers, "histest.pool.workers", gauge,                               \
    "worker threads in the shared pool")                                       \
  /* ---- trial harness (src/benchutil/parallel.cc) ---- */                    \
  X(kTrialsRun, "histest.trials.run", counter,                                 \
    "completed acceptance-estimation trials")                                  \
  X(kTrialArenaBytes, "histest.trial.arena_bytes", gauge,                      \
    "scratch-arena high-water mark of the reporting thread")                   \
  /* ---- tester pipeline (src/core/histogram_tester.cc) ---- */               \
  X(kTesterRuns, "histest.tester.runs", counter,                               \
    "HistogramTester::TestWithReport completions")                             \
  X(kStageApproxPartSamplesDrawn,                                              \
    "histest.stage.approx_part.samples_drawn", counter,                        \
    "oracle samples drawn by the ApproxPart stage")                            \
  X(kStageLearnerSamplesDrawn, "histest.stage.learner.samples_drawn",          \
    counter, "oracle samples drawn by the chi-square learner stage")           \
  X(kStageSieveSamplesDrawn, "histest.stage.sieve.samples_drawn", counter,     \
    "oracle samples drawn by the sieve stage")                                 \
  X(kStageFinalSamplesDrawn, "histest.stage.final.samples_drawn", counter,     \
    "oracle samples drawn by the final ADK identity test")                     \
  /* ---- sieve funnel (src/core/sieve.cc) ---- */                             \
  X(kSieveCandidates, "histest.sieve.candidates", counter,                     \
    "breakpoint intervals entering the sieve")                                 \
  X(kSieveSurvivors, "histest.sieve.survivors", counter,                       \
    "intervals still active when the sieve returned")                          \
  X(kSieveRemovedHeavy, "histest.sieve.removed_heavy", counter,                \
    "intervals removed by the heavy-prefix pass")                              \
  X(kSieveRemovedIterative, "histest.sieve.removed_iterative", counter,        \
    "intervals removed by iterative sieve rounds")                             \
  X(kSieveRounds, "histest.sieve.rounds", counter,                             \
    "iterative sieve rounds executed")                                         \
  /* ---- sample oracle (src/testing/oracle.cc) ---- */                        \
  X(kOracleBatchSamples, "histest.oracle.batch_samples", counter,              \
    "samples drawn through DrawBatch")                                         \
  X(kOracleBatches, "histest.oracle.batches", counter,                         \
    "DrawBatch invocations")                                                   \
  X(kOracleCountsSamples, "histest.oracle.counts_samples", counter,            \
    "samples drawn through DrawCounts")                                        \
  X(kOracleCountsSparse, "histest.oracle.counts_sparse", counter,              \
    "DrawCounts calls that produced a sparse CountVector")                     \
  X(kOracleCountsDense, "histest.oracle.counts_dense", counter,                \
    "DrawCounts calls that produced a dense CountVector")                      \
  /* ---- fit DP cost probes (src/histogram/fit_dp.cc) ---- */                 \
  X(kFitDpL1ReferenceCostProbes,                                               \
    "histest.fit_dp.l1.reference.cost_probes", counter,                        \
    "segment-cost evaluations in the reference L1 fit DP")                     \
  X(kFitDpL1ReferenceCalls, "histest.fit_dp.l1.reference.calls", counter,      \
    "reference-mode FitAtomsL1 invocations")                                   \
  X(kFitDpL1FastCostProbes, "histest.fit_dp.l1.fast.cost_probes", counter,     \
    "rank-tree cost probes in the fast L1 fit DP")                             \
  X(kFitDpL1FastCalls, "histest.fit_dp.l1.fast.calls", counter,                \
    "fast-mode FitAtomsL1 invocations")                                        \
  /* ---- kernel entry points (src/common/kernels.cc) ---- */                  \
  X(kKernelL1DistanceCalls, "histest.kernel.l1_distance.calls", counter,       \
    "L1Distance dispatch-wrapper calls")                                       \
  X(kKernelL2DistanceSqCalls, "histest.kernel.l2_distance_sq.calls",           \
    counter, "L2DistanceSquared dispatch-wrapper calls")                       \
  X(kKernelSumCalls, "histest.kernel.sum.calls", counter,                      \
    "SumOf dispatch-wrapper calls")                                            \
  X(kKernelSumSquaresCalls, "histest.kernel.sum_squares.calls", counter,       \
    "SumOfSquares dispatch-wrapper calls")                                     \
  X(kKernelHellingerCalls, "histest.kernel.hellinger.calls", counter,          \
    "HellingerAffinity dispatch-wrapper calls")                                \
  X(kKernelChiSquareCalls, "histest.kernel.chi_square.calls", counter,         \
    "ChiSquareStatistic dispatch-wrapper calls")                               \
  X(kKernelZAccumulateCalls, "histest.kernel.z_accumulate.calls", counter,     \
    "ZAccumulate dispatch-wrapper calls")                                      \
  X(kKernelFusedExpandL1Calls, "histest.kernel.fused_expand_l1.calls",         \
    counter, "FusedExpandL1 dispatch-wrapper calls")                           \
  X(kKernelFusedExpandL2Calls, "histest.kernel.fused_expand_l2.calls",         \
    counter, "FusedExpandL2 dispatch-wrapper calls")                           \
  X(kKernelFusedCountsZCalls, "histest.kernel.fused_counts_z.calls",           \
    counter, "FusedCountsZ dispatch-wrapper calls")                            \
  X(kKernelFusedCountsChiSquareCalls,                                          \
    "histest.kernel.fused_counts_chi_square.calls", counter,                   \
    "FusedCountsChiSquare dispatch-wrapper calls")                             \
  /* ---- SIMD dispatch state (src/common/simd/simd.cc) ---- */                \
  X(kSimdActiveVariant, "histest.simd.active_variant", gauge,                  \
    "installed dispatch variant (Variant enum value)")                         \
  X(kSimdCpuAvx2, "histest.simd.cpu.avx2", gauge,                              \
    "CPUID probe: AVX2 available")                                             \
  X(kSimdCpuAvx512f, "histest.simd.cpu.avx512f", gauge,                        \
    "CPUID probe: AVX-512F available")                                         \
  X(kSimdCpuNeon, "histest.simd.cpu.neon", gauge,                              \
    "probe: NEON/AdvSIMD available")                                           \
  /* ---- bench harness (bench/exp_common.h) ---- */                           \
  X(kBenchGridSeconds, "histest.bench.grid_seconds", histogram,                \
    "wall seconds per experiment grid sweep (ScopedTimer)")                    \
  /* ---- flight recorder (src/obs/flight_recorder.cc) ---- */                 \
  X(kRecorderThreads, "histest.recorder.threads", gauge,                       \
    "threads holding a registered flight-recorder ring")                       \
  /* ---- metrics publisher (src/obs/publisher.cc) ---- */                     \
  X(kPublisherSnapshots, "histest.publisher.snapshots", counter,               \
    "registry snapshots written by the background metrics publisher")         \
  /* ---- trace spans ---- */                                                  \
  X(kSpanHistogramTest, "histogram_test", span,                                \
    "one HistogramTester run; parent of the stage spans")                      \
  X(kSpanTrial, "trial", span,                                                 \
    "one acceptance-estimation trial on a pool thread")                        \
  X(kSpanRunGrid, "run_grid", span,                                            \
    "one experiment workload-grid sweep (bench harness)")                      \
  X(kSpanStageApproxPart, "stage.approx_part", span,                           \
    "ApproxPart stage of Algorithm 1")                                         \
  X(kSpanStageLearner, "stage.learner", span,                                  \
    "chi-square learner stage")                                                \
  X(kSpanStageSieve, "stage.sieve", span, "sieving stage")                     \
  X(kSpanStageCheck, "stage.check", span,                                      \
    "offline closeness check (draws no samples)")                              \
  X(kSpanStageFinal, "stage.final", span,                                      \
    "final restricted ADK identity test")

/// Per-variant dispatch tallies are a cross product, not a flat list: every
/// compiled SIMD backend tallies each dispatched kernel under
/// "histest.simd.<variant>.<kernel>.calls". The two lists below and the
/// pattern macro are the one source for all of them; KernelTable::tally in
/// src/common/simd/simd.cc is built by expanding
/// HISTEST_OBS_SIMD_KERNELS(HISTEST_OBS_SIMD_TALLY_ENTRY, "<variant>").
/// The kernel order here MUST match simd::KernelIndex.
#define HISTEST_OBS_SIMD_VARIANTS(V) \
  V("scalar") V("avx2") V("avx512") V("neon")

#define HISTEST_OBS_SIMD_KERNELS(K, variant)                                   \
  K(variant, "l1_distance") K(variant, "l2_distance_squared")                  \
  K(variant, "sum") K(variant, "sum_squares") K(variant, "hellinger")          \
  K(variant, "chi_square") K(variant, "z_accumulate")                          \
  K(variant, "alias_resolve") K(variant, "fused_expand_l1")                    \
  K(variant, "fused_expand_l2") K(variant, "fused_counts_z")                   \
  K(variant, "fused_counts_chi_square")

#define HISTEST_OBS_SIMD_TALLY_NAME(variant, kernel) \
  "histest.simd." variant "." kernel ".calls"

/// KernelTable::tally initializer entry (trailing comma for list expansion).
#define HISTEST_OBS_SIMD_TALLY_ENTRY(variant, kernel) \
  HISTEST_OBS_SIMD_TALLY_NAME(variant, kernel),
// clang-format on

namespace histest {
namespace obs {
namespace names {

#define HISTEST_OBS_DEFINE_NAME(ident, literal, kind, desc) \
  inline constexpr const char* ident = literal;
HISTEST_OBS_NAMES(HISTEST_OBS_DEFINE_NAME)
#undef HISTEST_OBS_DEFINE_NAME

}  // namespace names
}  // namespace obs
}  // namespace histest

#endif  // HISTEST_OBS_NAMES_H_
