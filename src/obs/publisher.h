#ifndef HISTEST_OBS_PUBLISHER_H_
#define HISTEST_OBS_PUBLISHER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace histest {
namespace obs {

/// Quantile estimate from an exponential-bucket histogram snapshot, using
/// nearest-rank selection with linear interpolation inside the selected
/// bucket. Bucket b spans (HistogramBucketBound(b-1), HistogramBucketBound(b)]
/// (bucket 0 starts at 0; the last bucket is unbounded and reports its lower
/// bound). Returns 0 for an empty histogram. `q` in [0, 1].
double HistogramQuantile(const HistogramSnapshot& h, double q);

/// OpenMetrics text exposition of a snapshot: counters as `_total`, gauges
/// verbatim, histograms as summaries with count/sum and p50/p95/p99
/// quantile lines derived via HistogramQuantile. Metric-name dots become
/// underscores per the exposition charset. Ends with "# EOF".
std::string RenderOpenMetrics(const MetricsSnapshot& snap);

/// Background metrics publisher: a snapshot thread that serializes
/// MetricsRegistry::Global() every `interval_ms` to a JSONL stream
/// (appended, one snapshot object per line) and/or an OpenMetrics text file
/// (atomically replaced via rename, so scrapers never see a torn file).
/// This is the live-gauges story for long-running processes — queue depth,
/// arena high-water, per-kernel call rates — without waiting for exit.
///
/// Lifecycle: construct -> Start() (spawns the thread) -> Stop() (wakes and
/// joins it, then writes one final snapshot so the last line always
/// reflects the registry's end state). The destructor calls Stop().
/// Start/Stop are not thread-safe against each other; drive the lifecycle
/// from one owner (TraceRunGuard in the harness).
class MetricsPublisher {
 public:
  struct Options {
    int64_t interval_ms = 1000;
    /// Append target for JSONL snapshots ("" = none).
    std::string jsonl_path;
    /// Replace target for OpenMetrics text ("" = none).
    std::string openmetrics_path;
    /// Timestamp source for snapshot records; nullptr uses the process
    /// monotonic clock. Tests inject FakeClock for stable timestamps.
    const Clock* clock = nullptr;
  };

  explicit MetricsPublisher(Options options);
  ~MetricsPublisher();

  MetricsPublisher(const MetricsPublisher&) = delete;
  MetricsPublisher& operator=(const MetricsPublisher&) = delete;

  /// Spawns the snapshot thread. Fails if already started or if neither
  /// output is configured.
  Status Start();

  /// Wakes and joins the thread, then publishes one final snapshot.
  /// Idempotent; safe to call without Start().
  void Stop();

  /// Snapshots written so far (including the final flush).
  int64_t SnapshotCount() const {
    return snapshots_.load(std::memory_order_relaxed);
  }

  /// Copy of the most recently published snapshot (empty before the
  /// first publication).
  MetricsSnapshot LastSnapshot() const;

 private:
  void Loop();
  void PublishOnce();

  const Options options_;
  std::atomic<int64_t> snapshots_{0};

  /// Guards the shutdown flag and the last-snapshot copy against the
  /// publisher thread; cv_ lets Stop() interrupt the interval sleep.
  mutable Mutex mu_;
  CondVar cv_;
  bool stop_ HISTEST_GUARDED_BY(mu_) = false;
  MetricsSnapshot last_ HISTEST_GUARDED_BY(mu_);

  bool started_ = false;  // owner-thread only (Start/Stop contract)
  std::thread thread_;
};

}  // namespace obs
}  // namespace histest

#endif  // HISTEST_OBS_PUBLISHER_H_
