#include "obs/clock.h"

#include <chrono>

#include "obs/metrics.h"

namespace histest {
namespace obs {

const NullClock* NullClock::Get() {
  static const NullClock clock;
  return &clock;
}

int64_t MonotonicClock::NowNanos() const {
  // analyzer-allow(rng-stream): the obs layer's monotonic timing source;
  // readings are observability-only and are never used as seed material.
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

const MonotonicClock* MonotonicClock::Get() {
  static const MonotonicClock clock;
  return &clock;
}

ScopedTimer::ScopedTimer(const char* histogram_name, const Clock* clock)
    : clock_(clock), name_(histogram_name) {
  if (clock_ == nullptr && Enabled()) clock_ = MonotonicClock::Get();
  if (clock_ != nullptr) start_ns_ = clock_->NowNanos();
}

double ScopedTimer::ElapsedSeconds() const {
  if (clock_ == nullptr) return 0.0;
  return static_cast<double>(clock_->NowNanos() - start_ns_) * 1e-9;
}

double ScopedTimer::Stop() {
  if (clock_ == nullptr) return 0.0;
  const double elapsed = ElapsedSeconds();
  ObserveHistogram(name_, elapsed);
  clock_ = nullptr;
  return elapsed;
}

ScopedTimer::~ScopedTimer() {
  if (clock_ != nullptr) (void)Stop();
}

}  // namespace obs
}  // namespace histest
