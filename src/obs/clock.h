#ifndef HISTEST_OBS_CLOCK_H_
#define HISTEST_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace histest {
namespace obs {

/// Injectable time source for the observability layer.
///
/// This is the only sanctioned way to read a clock in this codebase (the
/// clock-discipline analyzer checker bans raw std::chrono / libc clock
/// reads outside src/obs/ and src/benchutil/). Keeping every clock read
/// behind an injected interface is what makes the determinism contract
/// checkable: verdict paths never hold a Clock, so timing can never feed
/// back into experiment output, and tests swap in FakeClock for exact
/// duration assertions.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual int64_t NowNanos() const = 0;
};

/// Clock that always reads 0. Injected where spans are wanted for structure
/// (hierarchy, counters, annotations) but timing must not exist at all.
class NullClock : public Clock {
 public:
  int64_t NowNanos() const override { return 0; }

  /// Shared immutable instance.
  static const NullClock* Get();
};

/// The process monotonic clock (std::chrono::steady_clock).
class MonotonicClock : public Clock {
 public:
  int64_t NowNanos() const override;

  /// Shared immutable instance.
  static const MonotonicClock* Get();
};

/// Deterministic manual clock for tests and reproducible trace fixtures.
/// Every NowNanos() call returns the current value and then advances it by
/// `auto_step_ns`, so span durations are an exact function of the call
/// sequence. Thread-safe (reads from pool workers interleave, but each read
/// is atomic).
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_ns = 0, int64_t auto_step_ns = 0)
      : now_(start_ns), auto_step_ns_(auto_step_ns) {}

  int64_t NowNanos() const override {
    return now_.fetch_add(auto_step_ns_, std::memory_order_relaxed);
  }

  void Advance(int64_t delta_ns) {
    now_.fetch_add(delta_ns, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<int64_t> now_;
  int64_t auto_step_ns_;
};

/// RAII wall-clock timer recording elapsed seconds into the named metrics
/// histogram on destruction. The one timing implementation the bench layer
/// shares (no hand-rolled stopwatches). When the obs layer is disabled and
/// no clock is injected, the constructor performs no clock read and the
/// destructor records nothing — zero overhead beyond one branch.
class ScopedTimer {
 public:
  /// `histogram_name` must outlive the timer (string literals in practice).
  /// Passing an explicit clock forces timing on regardless of the global
  /// enable switch (tests inject FakeClock).
  explicit ScopedTimer(const char* histogram_name,
                       const Clock* clock = nullptr);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (0.0 when inert).
  double ElapsedSeconds() const;

  /// Records the elapsed time now and disarms the destructor. Returns the
  /// recorded seconds (0.0 when inert).
  double Stop();

 private:
  const Clock* clock_;  // nullptr = inert
  const char* name_;
  int64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace histest

#endif  // HISTEST_OBS_CLOCK_H_
