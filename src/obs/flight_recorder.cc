#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>

#include "common/check.h"
#include "common/cli.h"
#include "obs/clock.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace histest {
namespace obs {

namespace {

// ---------------------------------------------------------------------------
// Ring storage. One ring per thread, single-writer; every field a relaxed
// atomic so concurrent best-effort readers (DumpNow, the signal handler)
// are race-free by the language rules, with per-slot sequence words to
// detect and discard slots caught mid-write. See the header comment for
// the full memory-ordering contract.
// ---------------------------------------------------------------------------

constexpr size_t kNameWords = 6;  // 48 bytes: kMaxNameBytes + NUL, padded
static_assert(kNameWords * 8 > FlightRecorder::kMaxNameBytes);

struct Slot {
  // 0 = never written; odd = writer mid-update for event (seq-1)/2;
  // 2*n+2 = event n complete.
  std::atomic<uint64_t> seq{0};
  std::atomic<int64_t> ns{0};
  std::atomic<int64_t> value{0};
  std::atomic<uint32_t> kind{0};
  std::atomic<uint64_t> name[kNameWords];
};

struct ThreadRing {
  std::atomic<uint64_t> next{0};  // events ever written by this thread
  int index = 0;                  // registration order
  Slot slots[FlightRecorder::kRingCapacity];
};

// Lock-free ring table: slots are claimed by fetch_add and published with a
// release store, never taken back. No mutex anywhere on this path, so the
// signal handler can walk the table even if the crashed thread died holding
// arbitrary locks. Rings leak by design: a dead thread's last events are
// exactly what a post-mortem wants.
std::atomic<ThreadRing*> g_rings[FlightRecorder::kMaxRings];
std::atomic<int> g_ring_count{0};
std::atomic<uint64_t> g_dropped{0};  // events lost to ring-table exhaustion

thread_local ThreadRing* t_ring = nullptr;
thread_local bool t_ring_unavailable = false;

// One dump per process: the CHECK hook and the SIGABRT handler would
// otherwise both dump on an assertion failure.
std::atomic<bool> g_dumped{false};

// Pre-rendered at enable/install time so the signal path performs no
// allocation: the manifest record line and the dump path. Both leak.
std::atomic<const std::string*> g_manifest_line{nullptr};
char g_dump_path[1024] = "histest_flight_recorder.jsonl";

struct sigaction g_prev_segv;
struct sigaction g_prev_abrt;
std::atomic<bool> g_handlers_installed{false};

ThreadRing* RegisterRing() {
  const int idx = g_ring_count.fetch_add(1, std::memory_order_relaxed);
  if (idx >= static_cast<int>(FlightRecorder::kMaxRings)) {
    return nullptr;
  }
  auto* ring = new ThreadRing;  // leaked: post-mortem state
  ring->index = idx;
  g_rings[idx].store(ring, std::memory_order_release);
  return ring;
}

const char* KindName(uint32_t kind) {
  switch (static_cast<FrEventKind>(kind)) {
    case FrEventKind::kSpanBegin: return "span_begin";
    case FrEventKind::kSpanEnd: return "span_end";
    case FrEventKind::kCount: return "count";
    case FrEventKind::kGauge: return "gauge";
    case FrEventKind::kHistogram: return "histogram";
    case FrEventKind::kMark: return "mark";
    case FrEventKind::kCheckFail: return "check_fail";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Async-signal-safe output. Everything below the "normal context" marker
// restricts itself to write(2)/open(2), stack buffers, and lock-free atomic
// loads — no allocation, no stdio, no locks.
// ---------------------------------------------------------------------------

struct LineBuf {
  char data[512];
  size_t len = 0;

  void Put(char c) {
    if (len < sizeof(data) - 1) data[len++] = c;
  }
  void PutStr(const char* s) {
    while (*s != '\0') Put(*s++);
  }
  // JSON string contents: escape quote/backslash, replace control bytes.
  void PutJsonStr(const char* s) {
    for (; *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') {
        Put('\\');
        Put(static_cast<char>(c));
      } else if (c < 0x20) {
        Put('_');
      } else {
        Put(static_cast<char>(c));
      }
    }
  }
  void PutInt(int64_t v) {
    char tmp[24];
    size_t n = 0;
    uint64_t u;
    if (v < 0) {
      Put('-');
      u = static_cast<uint64_t>(-(v + 1)) + 1;  // safe for INT64_MIN
    } else {
      u = static_cast<uint64_t>(v);
    }
    do {
      tmp[n++] = static_cast<char>('0' + (u % 10));
      u /= 10;
    } while (u != 0 && n < sizeof(tmp));
    while (n > 0) Put(tmp[--n]);
  }
};

void WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;  // best effort; nowhere to report
    off += static_cast<size_t>(n);
  }
}

void WriteLine(int fd, LineBuf& buf) {
  buf.Put('\n');
  WriteAll(fd, buf.data, buf.len);
  buf.len = 0;
}

/// The dump proper. Async-signal-safe; also used from normal context.
void DumpToFd(int fd, const char* reason) {
  LineBuf buf;
  buf.PutStr("{\"type\":\"header\",\"schema_version\":2,\"tool\":\"histest\","
             "\"session\":\"flight_recorder\",\"dump\":\"flight_recorder\","
             "\"reason\":\"");
  buf.PutJsonStr(reason);
  buf.PutStr("\",\"dropped\":");
  buf.PutInt(static_cast<int64_t>(g_dropped.load(std::memory_order_relaxed)));
  buf.PutStr("}");
  WriteLine(fd, buf);

  const std::string* manifest =
      g_manifest_line.load(std::memory_order_acquire);
  if (manifest != nullptr) {
    WriteAll(fd, manifest->data(), manifest->size());
  }

  const int rings = g_ring_count.load(std::memory_order_acquire);
  const int limit =
      rings < static_cast<int>(FlightRecorder::kMaxRings)
          ? rings
          : static_cast<int>(FlightRecorder::kMaxRings);
  for (int r = 0; r < limit; ++r) {
    const ThreadRing* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const uint64_t end = ring->next.load(std::memory_order_acquire);
    const uint64_t start =
        end > FlightRecorder::kRingCapacity
            ? end - FlightRecorder::kRingCapacity
            : 0;
    for (uint64_t i = start; i < end; ++i) {
      const Slot& s = ring->slots[i % FlightRecorder::kRingCapacity];
      const uint64_t want = 2 * i + 2;
      if (s.seq.load(std::memory_order_acquire) != want) continue;
      char name[kNameWords * 8 + 1];
      for (size_t w = 0; w < kNameWords; ++w) {
        const uint64_t word = s.name[w].load(std::memory_order_relaxed);
        std::memcpy(name + w * 8, &word, 8);
      }
      name[kNameWords * 8] = '\0';
      const int64_t ns = s.ns.load(std::memory_order_relaxed);
      const int64_t value = s.value.load(std::memory_order_relaxed);
      const uint32_t kind = s.kind.load(std::memory_order_relaxed);
      // A slot overwritten mid-read no longer carries seq 2*i+2: discard.
      if (s.seq.load(std::memory_order_acquire) != want) continue;
      buf.PutStr("{\"type\":\"event\",\"thread\":");
      buf.PutInt(ring->index);
      buf.PutStr(",\"seq\":");
      buf.PutInt(static_cast<int64_t>(i));
      buf.PutStr(",\"ns\":");
      buf.PutInt(ns);
      buf.PutStr(",\"kind\":\"");
      buf.PutStr(KindName(kind));
      buf.PutStr("\",\"name\":\"");
      buf.PutJsonStr(name);
      buf.PutStr("\",\"value\":");
      buf.PutInt(value);
      buf.PutStr("}");
      WriteLine(fd, buf);
    }
  }
}

/// Opens the pre-resolved dump path and dumps once. Async-signal-safe.
void DumpOnceToConfiguredPath(const char* reason) {
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  DumpToFd(fd, reason);
  ::close(fd);
}

void CrashSignalHandler(int signo) {
  // "signal:<n>" formatted without snprintf (not async-signal-safe).
  char reason[24] = "signal:";
  size_t p = 7;
  if (signo >= 10) reason[p++] = static_cast<char>('0' + signo / 10);
  reason[p++] = static_cast<char>('0' + signo % 10);
  reason[p] = '\0';
  DumpOnceToConfiguredPath(reason);
  // Restore the previous disposition and re-raise so the default crash
  // semantics (core dump, nonzero wait status) are preserved.
  ::sigaction(signo, signo == SIGSEGV ? &g_prev_segv : &g_prev_abrt,
              nullptr);
  ::raise(signo);
}

// ------------------------- normal context only ----------------------------

void RenderDumpContext() {
  // The manifest line is rendered with the regular allocator — enable time
  // is normal context — and published once; the handler only reads bytes.
  auto* line = new std::string(
      "{\"type\":\"manifest\",\"manifest\":" + CurrentRunManifest().ToJson() +
      "}\n");
  const std::string* expected = nullptr;
  if (!g_manifest_line.compare_exchange_strong(expected, line,
                                               std::memory_order_acq_rel)) {
    delete line;  // another enabler won the race; keep the first render
  }
  const EnvValue<std::string> out = ParseEnvString(
      "HISTEST_FLIGHT_RECORDER_OUT", "histest_flight_recorder.jsonl");
  const size_t n = out.value.size() < sizeof(g_dump_path) - 1
                       ? out.value.size()
                       : sizeof(g_dump_path) - 1;
  std::memcpy(g_dump_path, out.value.data(), n);
  g_dump_path[n] = '\0';
}

void CheckFailureHook(const char* file, int line, const char* /*msg*/) {
  // Record where the contract broke; the abort() that follows raises
  // SIGABRT and the signal handler (if installed) performs the dump.
  LineBuf loc;
  loc.PutStr(file);
  loc.Put(':');
  loc.PutInt(line);
  loc.data[loc.len] = '\0';
  FlightRecorder::Record(FrEventKind::kCheckFail,
                         std::string_view(loc.data, loc.len), 0);
}

}  // namespace

void FlightRecorder::SetEnabled(bool on) {
  if (on) RenderDumpContext();
  internal_fr::g_enabled.store(on, std::memory_order_relaxed);
}

bool FlightRecorder::InitFromEnv() {
  const EnvValue<bool> flag = ParseEnvFlag("HISTEST_FLIGHT_RECORDER", false);
  if (flag.value) {
    SetEnabled(true);
    InstallCrashHandlers();
  }
  return Enabled();
}

void FlightRecorder::InstallCrashHandlers() {
  if (g_handlers_installed.exchange(true, std::memory_order_acq_rel)) return;
  RenderDumpContext();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashSignalHandler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESETHAND: the handler restores the saved disposition itself so
  // the re-raise reaches whatever was installed before us (gtest's death
  // test machinery, a debugger's handler, or the default).
  ::sigaction(SIGSEGV, &sa, &g_prev_segv);
  ::sigaction(SIGABRT, &sa, &g_prev_abrt);
  SetCheckFailedHook(&CheckFailureHook);
}

void FlightRecorder::RecordSlow(EventKind kind, std::string_view name,
                                int64_t value) {
  if (t_ring == nullptr) {
    if (t_ring_unavailable) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    t_ring = RegisterRing();
    if (t_ring == nullptr) {
      t_ring_unavailable = true;
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Publish the gauge only after t_ring is assigned: SetGauge re-enters
    // Record (the recorder sees every metric write), and with t_ring still
    // null that re-entry would register a fresh ring per nesting level
    // until the table was exhausted.
    SetGauge(names::kRecorderThreads, t_ring->index + 1);
  }
  ThreadRing& ring = *t_ring;
  const uint64_t n = ring.next.load(std::memory_order_relaxed);
  Slot& s = ring.slots[n % kRingCapacity];
  s.seq.store(2 * n + 1, std::memory_order_relaxed);  // odd: in progress
  s.ns.store(MonotonicClock::Get()->NowNanos(), std::memory_order_relaxed);
  s.value.store(value, std::memory_order_relaxed);
  s.kind.store(static_cast<uint32_t>(kind), std::memory_order_relaxed);
  char bytes[kNameWords * 8];
  std::memset(bytes, 0, sizeof(bytes));
  const size_t len = name.size() < kMaxNameBytes ? name.size() : kMaxNameBytes;
  std::memcpy(bytes, name.data(), len);
  for (size_t w = 0; w < kNameWords; ++w) {
    uint64_t word;
    std::memcpy(&word, bytes + w * 8, 8);
    s.name[w].store(word, std::memory_order_relaxed);
  }
  s.seq.store(2 * n + 2, std::memory_order_release);  // even: complete
  ring.next.store(n + 1, std::memory_order_release);
}

Status FlightRecorder::DumpNow(const std::string& path, const char* reason) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("flight recorder: cannot open dump file: " +
                            path);
  }
  DumpToFd(fd, reason);
  ::close(fd);
  return Status::Ok();
}

uint64_t FlightRecorder::TotalEvents() {
  uint64_t total = g_dropped.load(std::memory_order_relaxed);
  const int rings = g_ring_count.load(std::memory_order_acquire);
  const int limit = rings < static_cast<int>(kMaxRings)
                        ? rings
                        : static_cast<int>(kMaxRings);
  for (int r = 0; r < limit; ++r) {
    const ThreadRing* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring != nullptr) total += ring->next.load(std::memory_order_relaxed);
  }
  return total;
}

void FlightRecorder::ResetForTest() {
  const int rings = g_ring_count.load(std::memory_order_acquire);
  const int limit = rings < static_cast<int>(kMaxRings)
                        ? rings
                        : static_cast<int>(kMaxRings);
  for (int r = 0; r < limit; ++r) {
    ThreadRing* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (Slot& s : ring->slots) s.seq.store(0, std::memory_order_relaxed);
    ring->next.store(0, std::memory_order_relaxed);
  }
  g_dropped.store(0, std::memory_order_relaxed);
  g_dumped.store(false, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace histest
