#ifndef HISTEST_OBS_MANIFEST_H_
#define HISTEST_OBS_MANIFEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"

namespace histest {
namespace obs {

/// RunManifest: the structured provenance record for one process run —
/// "what exactly was this run?" answered machine-checkably. It is embedded
/// as the `manifest` record of every trace JSONL (schema v2), stamped into
/// bench JSON context, printable via `--manifest` on every experiment
/// binary, and prepended to flight-recorder dumps so post-mortems carry
/// their own provenance.
///
/// Bump when fields are added/removed/renamed; readers (tools/histest-trace,
/// tools/histest-obs) refuse newer versions rather than guessing.
inline constexpr int kManifestVersion = 1;

/// Machine-readable field inventory: X(key, "description"). The JSON object
/// produced by RunManifest::ToJson has exactly these keys, in this order.
/// tools/gen_manifest_table.py parses this block into the DESIGN.md schema
/// table (a --check ctest keeps them in sync), and tools/trace_gate.py
/// requires every key in gated traces. Edit fields HERE first.
// clang-format off
#define HISTEST_MANIFEST_FIELDS(X)                                            \
  X(manifest_version,                                                         \
    "manifest schema version (kManifestVersion; readers reject newer)")       \
  X(git_describe,                                                             \
    "`git describe --always --dirty --tags` captured at CMake configure "     \
    "time; \"unknown\" when built outside a git checkout")                    \
  X(build_type, "CMAKE_BUILD_TYPE the library was compiled under")            \
  X(compiler, "compiler id and version that built the library")               \
  X(cpu_features, "runtime CPUID/HWCAP probe summary (CpuFeatures)")          \
  X(simd_variant, "active SIMD dispatch variant after HISTEST_SIMD")          \
  X(threads, "resolved executor count (DefaultBenchThreads)")                 \
  X(pool_workers,                                                             \
    "shared ThreadPool worker sizing (callers add one executor)")             \
  X(timestamp_unix_ms,                                                        \
    "wall-clock capture time, ms since the Unix epoch; the one field "        \
    "excluded from the determinism contract")                                 \
  X(env,                                                                      \
    "every HISTEST_* knob (cli.h inventory): raw string when set, null "      \
    "when unset")                                                             \
  X(params,                                                                   \
    "per-run experiment parameters and seeds stamped by the harness "         \
    "(command-line flags, experiment id)")
// clang-format on

struct RunManifest {
  int manifest_version = kManifestVersion;
  std::string git_describe;
  std::string build_type;
  std::string compiler;
  std::string cpu_features;
  std::string simd_variant;
  int threads = 0;
  int pool_workers = 0;
  /// 0 means "not stamped" (deterministic emitters zero it on purpose).
  int64_t timestamp_unix_ms = 0;
  /// HISTEST_* knobs in SnapshotEnvKnobs() order.
  std::vector<EnvKnob> env;
  /// Harness-provided key/value parameters (seeds, grid flags, experiment
  /// id), serialized as strings in insertion order.
  std::vector<std::pair<std::string, std::string>> params;

  void AddParam(std::string key, std::string value) {
    params.emplace_back(std::move(key), std::move(value));
  }

  /// One JSON object with exactly the HISTEST_MANIFEST_FIELDS keys, in
  /// declaration order. `include_timestamp` false serializes
  /// timestamp_unix_ms as 0 — the byte-identical form two runs with the
  /// same knobs must agree on (the manifest determinism contract).
  std::string ToJson(bool include_timestamp = true) const;
};

/// Captures the current process: compiled-in build identity, runtime CPU /
/// SIMD state, thread sizing, and the full env-knob snapshot. `params` is
/// left empty for the caller. The result is deterministic for a fixed
/// binary + environment, except timestamp_unix_ms.
RunManifest CurrentRunManifest();

}  // namespace obs
}  // namespace histest

#endif  // HISTEST_OBS_MANIFEST_H_
