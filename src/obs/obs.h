#ifndef HISTEST_OBS_OBS_H_
#define HISTEST_OBS_OBS_H_

/// Umbrella header for the observability layer.
///
/// The layer has six parts:
///   * metrics.h — MetricsRegistry: named counters / gauges / histograms
///     with lock-free per-thread shards, merged on snapshot;
///   * trace.h   — TraceSession: hierarchical spans with explicit clock
///     injection, exported as JSONL for tools/histest-trace;
///   * clock.h   — the injected Clock interface (Monotonic / Null / Fake)
///     and ScopedTimer, the codebase's only sanctioned timing primitives
///     (enforced by the clock-discipline analyzer checker);
///   * manifest.h — RunManifest: the structured run-provenance record
///     embedded in traces, bench JSON, and flight-recorder dumps;
///   * flight_recorder.h — the always-on per-thread event ring dumped on
///     crashes / CHECK failures / demand (the post-mortem story);
///   * publisher.h — the background MetricsPublisher thread (OpenMetrics /
///     JSONL live snapshots with derived p50/p95/p99).
///
/// Everything is gated on obs::Enabled() (HISTEST_TRACE env or --trace):
/// disabled, every entry point is one relaxed load and a branch, no clock
/// is ever read, and experiment output is byte-identical to an uninstrumented
/// build. The flight recorder has its own identical gate
/// (HISTEST_FLIGHT_RECORDER) so post-mortem capture composes freely with
/// tracing. Nothing in a verdict path may ever read a metric, span, or clock
/// back — the layer is strictly write-only from the pipeline's side.

#include "obs/clock.h"            // IWYU pragma: export
#include "obs/flight_recorder.h"  // IWYU pragma: export
#include "obs/manifest.h"         // IWYU pragma: export
#include "obs/metrics.h"          // IWYU pragma: export
#include "obs/publisher.h"        // IWYU pragma: export
#include "obs/trace.h"            // IWYU pragma: export

#endif  // HISTEST_OBS_OBS_H_
