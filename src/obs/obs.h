#ifndef HISTEST_OBS_OBS_H_
#define HISTEST_OBS_OBS_H_

/// Umbrella header for the observability layer.
///
/// The layer has three parts:
///   * metrics.h — MetricsRegistry: named counters / gauges / histograms
///     with lock-free per-thread shards, merged on snapshot;
///   * trace.h   — TraceSession: hierarchical spans with explicit clock
///     injection, exported as JSONL for tools/histest-trace;
///   * clock.h   — the injected Clock interface (Monotonic / Null / Fake)
///     and ScopedTimer, the codebase's only sanctioned timing primitives
///     (enforced by the clock-discipline analyzer checker).
///
/// Everything is gated on obs::Enabled() (HISTEST_TRACE env or --trace):
/// disabled, every entry point is one relaxed load and a branch, no clock
/// is read, and experiment output is byte-identical to an uninstrumented
/// build. Nothing in a verdict path may ever read a metric, span, or clock
/// back — the layer is strictly write-only from the pipeline's side.

#include "obs/clock.h"    // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export

#endif  // HISTEST_OBS_OBS_H_
