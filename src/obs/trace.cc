#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "obs/flight_recorder.h"

namespace histest {
namespace obs {
namespace {

std::atomic<TraceSession*> g_active{nullptr};

/// Innermost open span on this thread; children attach under it.
thread_local SpanId tls_parent = 0;

std::string JsonNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

TraceSession::TraceSession(std::string name, const Clock* clock)
    : name_(std::move(name)), clock_(clock) {
  HISTEST_CHECK(clock_ != nullptr);
}

TraceSession::~TraceSession() {
  // A session must never outlive its activation scope; if it somehow does,
  // fail closed rather than leave a dangling active pointer.
  TraceSession* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel);
}

SpanId TraceSession::Begin(std::string_view span_name, SpanId parent) {
  const int64_t now = clock_->NowNanos();
  MutexLock lock(mu_);
  SpanRecord rec;
  rec.id = next_id_++;
  rec.parent = parent;
  rec.name = std::string(span_name);
  rec.start_ns = now;
  rec.end_ns = now;
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void TraceSession::End(SpanId id) {
  const int64_t now = clock_->NowNanos();
  MutexLock lock(mu_);
  if (id >= 1 && static_cast<size_t>(id) <= spans_.size()) {
    spans_[static_cast<size_t>(id) - 1].end_ns = now;
  }
}

void TraceSession::Annotate(SpanId id, std::string_view key, int64_t value) {
  MutexLock lock(mu_);
  if (id >= 1 && static_cast<size_t>(id) <= spans_.size()) {
    spans_[static_cast<size_t>(id) - 1].annotations.push_back(
        {std::string(key), std::to_string(value)});
  }
}

void TraceSession::Annotate(SpanId id, std::string_view key, double value) {
  MutexLock lock(mu_);
  if (id >= 1 && static_cast<size_t>(id) <= spans_.size()) {
    spans_[static_cast<size_t>(id) - 1].annotations.push_back(
        {std::string(key), JsonNumber(value)});
  }
}

void TraceSession::Annotate(SpanId id, std::string_view key,
                            std::string_view value) {
  // append() rather than an operator+ chain: GCC 12's -O3 -Wrestrict
  // misfires on the concatenation temporaries.
  std::string quoted = "\"";
  quoted += JsonEscape(value);
  quoted += '"';
  MutexLock lock(mu_);
  if (id >= 1 && static_cast<size_t>(id) <= spans_.size()) {
    spans_[static_cast<size_t>(id) - 1].annotations.push_back(
        {std::string(key), std::move(quoted)});
  }
}

size_t TraceSession::NumSpans() const {
  MutexLock lock(mu_);
  return spans_.size();
}

std::vector<SpanRecord> TraceSession::Spans() const {
  MutexLock lock(mu_);
  return spans_;
}

void TraceSession::SetManifestJson(std::string manifest_json) {
  MutexLock lock(mu_);
  manifest_json_ = std::move(manifest_json);
}

Status TraceSession::WriteJsonl(std::ostream& os,
                                const MetricsSnapshot* metrics) const {
  MutexLock lock(mu_);
  os << "{\"type\":\"header\",\"schema_version\":" << kSchemaVersion
     << ",\"tool\":\"histest\",\"session\":\"" << JsonEscape(name_)
     << "\"}\n";
  if (!manifest_json_.empty()) {
    // manifest_json_ is RunManifest::ToJson output — already a JSON object.
    os << "{\"type\":\"manifest\",\"manifest\":" << manifest_json_ << "}\n";
  }
  for (const SpanRecord& s : spans_) {
    os << "{\"type\":\"span\",\"id\":" << s.id << ",\"parent\":" << s.parent
       << ",\"name\":\"" << JsonEscape(s.name) << "\",\"start_ns\":"
       << s.start_ns << ",\"end_ns\":" << s.end_ns;
    if (!s.annotations.empty()) {
      os << ",\"ann\":{";
      for (size_t i = 0; i < s.annotations.size(); ++i) {
        if (i > 0) os << ",";
        os << "\"" << JsonEscape(s.annotations[i].key)
           << "\":" << s.annotations[i].json_value;
      }
      os << "}";
    }
    os << "}\n";
  }
  if (metrics != nullptr) {
    os << "{\"type\":\"metrics\",\"metrics\":" << metrics->ToJson() << "}\n";
  }
  if (!os.good()) return Status::Internal("trace stream write failed");
  return Status::Ok();
}

Status TraceSession::WriteJsonlFile(const std::string& path,
                                    const MetricsSnapshot* metrics) const {
  std::ofstream os(path);
  if (!os.is_open()) {
    return Status::InvalidArgument("cannot open trace output path: " + path);
  }
  HISTEST_RETURN_IF_ERROR(WriteJsonl(os, metrics));
  os.close();
  if (!os.good()) return Status::Internal("trace file write failed: " + path);
  return Status::Ok();
}

TraceSession* ActiveTrace() {
  return g_active.load(std::memory_order_acquire);
}

void SetActiveTrace(TraceSession* session) {
  g_active.store(session, std::memory_order_release);
}

ScopedTraceActivation::ScopedTraceActivation(TraceSession* session)
    : previous_(ActiveTrace()) {
  SetActiveTrace(session);
}

ScopedTraceActivation::~ScopedTraceActivation() { SetActiveTrace(previous_); }

TraceSpan::TraceSpan(std::string_view name) : session_(ActiveTrace()) {
  // Flight-recorder hook before the inert-mode early-out: post-mortem span
  // events must flow even when no trace session is active. The name is
  // kept (truncated) so the destructor can emit the matching span_end.
  if (FlightRecorder::Enabled()) {
    FlightRecorder::Record(FrEventKind::kSpanBegin, name, 0);
    const size_t n =
        name.size() < sizeof(fr_name_) - 1 ? name.size() : sizeof(fr_name_) - 1;
    std::memcpy(fr_name_, name.data(), n);
    fr_name_[n] = '\0';
    fr_armed_ = true;
  }
  if (session_ == nullptr) return;
  saved_parent_ = tls_parent;
  id_ = session_->Begin(name, saved_parent_);
  tls_parent = id_;
}

TraceSpan::~TraceSpan() {
  if (fr_armed_) {
    FlightRecorder::Record(FrEventKind::kSpanEnd, fr_name_, 0);
  }
  if (session_ == nullptr) return;
  tls_parent = saved_parent_;
  session_->End(id_);
}

void TraceSpan::AnnotateInt(std::string_view key, int64_t value) {
  if (session_ != nullptr) session_->Annotate(id_, key, value);
}

void TraceSpan::AnnotateDouble(std::string_view key, double value) {
  if (session_ != nullptr) session_->Annotate(id_, key, value);
}

void TraceSpan::AnnotateString(std::string_view key, std::string_view value) {
  if (session_ != nullptr) session_->Annotate(id_, key, value);
}

}  // namespace obs
}  // namespace histest
