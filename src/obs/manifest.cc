#include "obs/manifest.h"

#include <chrono>
#include <string>

#include "benchutil/parallel.h"
#include "common/simd/simd.h"
#include "obs/metrics.h"
#include "obs/version_info.h"

namespace histest {
namespace obs {

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  out += JsonEscape(s);
  out += '"';
}

}  // namespace

std::string RunManifest::ToJson(bool include_timestamp) const {
  std::string out = "{";
  out += "\"manifest_version\":" + std::to_string(manifest_version);
  out += ",\"git_describe\":";
  AppendJsonString(out, git_describe);
  out += ",\"build_type\":";
  AppendJsonString(out, build_type);
  out += ",\"compiler\":";
  AppendJsonString(out, compiler);
  out += ",\"cpu_features\":";
  AppendJsonString(out, cpu_features);
  out += ",\"simd_variant\":";
  AppendJsonString(out, simd_variant);
  out += ",\"threads\":" + std::to_string(threads);
  out += ",\"pool_workers\":" + std::to_string(pool_workers);
  out += ",\"timestamp_unix_ms\":" +
         std::to_string(include_timestamp ? timestamp_unix_ms : int64_t{0});
  out += ",\"env\":{";
  bool first = true;
  for (const EnvKnob& knob : env) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, knob.name);
    out += ':';
    if (knob.present) {
      AppendJsonString(out, knob.raw);
    } else {
      out += "null";
    }
  }
  out += "},\"params\":{";
  first = true;
  for (const auto& [key, value] : params) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, key);
    out += ':';
    AppendJsonString(out, value);
  }
  out += "}}";
  return out;
}

RunManifest CurrentRunManifest() {
  RunManifest m;
  m.git_describe = HISTEST_GIT_DESCRIBE;
  m.build_type = HISTEST_BUILD_TYPE;
  m.compiler = HISTEST_MANIFEST_COMPILER;
  m.cpu_features = simd::DetectCpuFeatures().ToString();
  m.simd_variant = simd::VariantName(simd::ActiveVariant());
  m.threads = DefaultBenchThreads();
  m.pool_workers = ThreadPool::SharedPlannedWorkers();
  // System (wall) clock on purpose: manifests are provenance for humans and
  // cross-run tooling, not measurement. All measurement goes through the
  // injected obs::Clock; clock-discipline exempts src/obs for exactly the
  // two sanctioned raw reads (MonotonicClock and this timestamp).
  m.timestamp_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          // analyzer-allow(rng-stream): provenance timestamp, not seed material
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  m.env = SnapshotEnvKnobs();
  return m;
}

}  // namespace obs
}  // namespace histest
