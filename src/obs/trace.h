#ifndef HISTEST_OBS_TRACE_H_
#define HISTEST_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace histest {
namespace obs {

/// Span identifier within one TraceSession; 0 means "no span".
using SpanId = int64_t;

/// One typed span annotation, pre-rendered to its JSON value text.
struct SpanAnnotation {
  std::string key;
  std::string json_value;  // already valid JSON (number or quoted string)
};

/// One closed or open span.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  std::string name;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  std::vector<SpanAnnotation> annotations;
};

/// A hierarchical span collector with an injected clock.
///
/// The session never installs itself: instrumented code sees it only
/// through the process-wide active-session pointer (SetActiveTrace /
/// ScopedTraceActivation), and span parentage is tracked per thread, so
/// pool workers each build their own subtree under whatever span was open
/// when their task began on that thread (the trial harness opens one
/// "trial" span per task). All member functions are thread-safe; recording
/// is mutex-serialized, which is fine at stage granularity.
///
/// Determinism contract: the clock is injected (NullClock gives structure
/// without timing; FakeClock gives reproducible timing), span data is
/// write-only from the pipeline's perspective, and nothing in a verdict
/// path ever reads a span back — so enabling tracing cannot change any
/// experiment result, only describe it.
class TraceSession {
 public:
  /// Trace JSONL schema version; bump on any breaking record change.
  /// tools/histest-trace refuses files whose header disagrees.
  /// v2: a manifest record (RunManifest provenance) follows the header.
  static constexpr int kSchemaVersion = 2;

  TraceSession(std::string name, const Clock* clock);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  const std::string& name() const { return name_; }

  /// Opens a span; returns its id.
  SpanId Begin(std::string_view span_name, SpanId parent);

  /// Closes the span (records its end time).
  void End(SpanId id);

  void Annotate(SpanId id, std::string_view key, int64_t value);
  void Annotate(SpanId id, std::string_view key, double value);
  void Annotate(SpanId id, std::string_view key, std::string_view value);

  size_t NumSpans() const;

  /// Copy of the recorded spans (tests and in-process summaries).
  std::vector<SpanRecord> Spans() const;

  /// Attaches the run's provenance record (RunManifest::ToJson output).
  /// WriteJsonl emits it right after the header; an empty string (the
  /// default) writes no manifest record, which readers treat as a legacy /
  /// incomplete trace (trace_gate.py fails such traces in CI).
  void SetManifestJson(std::string manifest_json);

  /// Writes the session as JSON Lines: one header record carrying
  /// kSchemaVersion, one record per span, and — when `metrics` is non-null
  /// — one trailing metrics record. This is the wire format
  /// tools/histest-trace consumes.
  Status WriteJsonl(std::ostream& os, const MetricsSnapshot* metrics) const;
  Status WriteJsonlFile(const std::string& path,
                        const MetricsSnapshot* metrics) const;

 private:
  /// Serializes span recording: Begin/End/Annotate from any pool thread vs
  /// reads (Spans, WriteJsonl). name_ and clock_ are set once in the
  /// constructor and immutable after, so they stay unguarded.
  mutable Mutex mu_;
  std::string name_;
  const Clock* clock_;
  std::vector<SpanRecord> spans_ HISTEST_GUARDED_BY(mu_);
  SpanId next_id_ HISTEST_GUARDED_BY(mu_) = 1;
  std::string manifest_json_ HISTEST_GUARDED_BY(mu_);
};

/// The process-wide active session (nullptr when tracing is off). The
/// single relaxed-atomic read every TraceSpan starts with.
TraceSession* ActiveTrace();
void SetActiveTrace(TraceSession* session);

/// RAII: installs `session` as the active trace for its scope, restoring
/// the previous session (usually nullptr) on destruction.
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(TraceSession* session);
  ~ScopedTraceActivation();

  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;

 private:
  TraceSession* previous_;
};

/// RAII span on the calling thread's span stack. Inert (a null check and
/// nothing else) when no session is active, so instrumented code costs
/// nothing in disabled mode. The annotation methods are no-ops when inert.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return session_ != nullptr; }

  void AnnotateInt(std::string_view key, int64_t value);
  void AnnotateDouble(std::string_view key, double value);
  void AnnotateString(std::string_view key, std::string_view value);

 private:
  TraceSession* session_;
  SpanId id_ = 0;
  SpanId saved_parent_ = 0;
  /// Flight-recorder arming: when the recorder is on at construction, the
  /// (truncated) span name is kept so the destructor can emit the matching
  /// span_end event without the session (recording works with tracing off).
  bool fr_armed_ = false;
  char fr_name_[48] = {0};
};

}  // namespace obs
}  // namespace histest

#endif  // HISTEST_OBS_TRACE_H_
