#include "obs/metrics.h"

#include "common/cli.h"
#include "obs/flight_recorder.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace histest {
namespace obs {
namespace {

std::atomic<bool> g_enabled{false};

/// Round-robin shard assignment: each thread gets a stable shard index on
/// its first metric write. Distinct threads land on distinct cache lines
/// until more than kMetricShards threads exist, after which shards are
/// shared (still correct, just contended).
size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

/// Bucket index for a histogram observation.
size_t BucketFor(double value) {
  size_t b = 0;
  double bound = kHistogramMinBound;
  while (b + 1 < kHistogramBuckets && value > bound) {
    bound *= 2.0;
    ++b;
  }
  return b;
}

void AppendJsonDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool InitFromEnv() {
  const EnvValue<bool> env = ParseEnvFlag("HISTEST_TRACE", false);
  if (env.present && env.value) SetEnabled(true);
  return Enabled();
}

// ---------------------------------------------------------------- Counter

void Counter::AddUngated(int64_t delta) {
  shards_[ThisThreadShard()].value.fetch_add(delta,
                                             std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------- HistogramMetric

double HistogramBucketBound(size_t b) {
  double bound = kHistogramMinBound;
  for (size_t i = 0; i < b; ++i) bound *= 2.0;
  return bound;
}

void HistogramMetric::Observe(double value) {
  if (!Enabled()) return;
  Shard& s = shards_[ThisThreadShard()];
  s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  double cur = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(cur, cur + value,
                                      std::memory_order_relaxed)) {
  }
}

int64_t HistogramMetric::Count() const {
  int64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramMetric::Sum() const {
  // Fixed shard order, so the merged sum is deterministic for a given set
  // of per-shard values.
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<int64_t> HistogramMetric::Buckets() const {
  std::vector<int64_t> out(kHistogramBuckets, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void HistogramMetric::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  {
    ReaderMutexLock lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  WriterMutexLock lock(mu_);
  auto [it, inserted] = counters_.try_emplace(
      std::string(name), nullptr);
  if (inserted) {
    it->second = std::unique_ptr<Counter>(new Counter(std::string(name)));
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  {
    ReaderMutexLock lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  WriterMutexLock lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(std::string(name), nullptr);
  if (inserted) {
    it->second = std::unique_ptr<Gauge>(new Gauge(std::string(name)));
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::GetHistogram(std::string_view name) {
  {
    ReaderMutexLock lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  WriterMutexLock lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(std::string(name), nullptr);
  if (inserted) {
    it->second = std::unique_ptr<HistogramMetric>(
        new HistogramMetric(std::string(name)));
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  ReaderMutexLock lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->Count();
    hs.sum = h->Sum();
    hs.buckets = h->Buckets();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  WriterMutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  // Built with append() calls, not operator+ chains: GCC 12's -O3
  // -Wrestrict misfires on the temporaries those chains create.
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(h.name);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    AppendJsonDouble(out, h.sum);
    if (h.count > 0) {
      out += ",\"buckets\":[";
      for (size_t b = 0; b < h.buckets.size(); ++b) {
        if (b > 0) out += ",";
        out += std::to_string(h.buckets[b]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "}}";
  return out;
}

// ----------------------------------------------------- name-keyed helpers

// Each helper feeds the flight recorder first (its own relaxed-load gate,
// independent of Enabled(): post-mortem recording works with the metrics
// layer off), then the registry. Disabled-disabled cost is two relaxed
// loads + branches — still inside trace_gate.py's overhead budget, which
// benches these exact entry points.

void AddCount(std::string_view name, int64_t delta) {
  FlightRecorder::Record(FrEventKind::kCount, name, delta);
  if (!Enabled()) return;
  MetricsRegistry::Global().GetCounter(name).Add(delta);
}

void SetGauge(std::string_view name, int64_t value) {
  FlightRecorder::Record(FrEventKind::kGauge, name, value);
  if (!Enabled()) return;
  MetricsRegistry::Global().GetGauge(name).Set(value);
}

void ObserveHistogram(std::string_view name, double value) {
  // Ring events carry int64 payloads; observations (seconds, in every
  // current histogram) are recorded as nanos. The conversion sits behind
  // the gate so the disabled path stays a load + branch.
  if (FlightRecorder::Enabled()) {
    FlightRecorder::Record(FrEventKind::kHistogram, name,
                           std::llround(value * 1e9));
  }
  if (!Enabled()) return;
  MetricsRegistry::Global().GetHistogram(name).Observe(value);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace obs
}  // namespace histest
