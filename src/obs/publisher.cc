#include "obs/publisher.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/names.h"

namespace histest {
namespace obs {

namespace {

/// Metric names use dots; the OpenMetrics charset wants [a-zA-Z0-9_:].
std::string OpenMetricsName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

constexpr double kQuantiles[] = {0.5, 0.95, 0.99};
constexpr const char* kQuantileLabels[] = {"0.5", "0.95", "0.99"};

}  // namespace

double HistogramQuantile(const HistogramSnapshot& h, double q) {
  if (h.count <= 0 || h.buckets.empty()) return 0.0;
  const double clamped_q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target (1-based): the smallest cumulative count covering
  // fraction q of the observations; at least 1 so q=0 selects the first
  // populated bucket's lower edge region.
  const double target =
      std::max(1.0, clamped_q * static_cast<double>(h.count));
  int64_t cumulative = 0;
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    const int64_t in_bucket = h.buckets[b];
    if (in_bucket == 0) continue;
    const int64_t before = cumulative;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    const double lower = b == 0 ? 0.0 : HistogramBucketBound(b - 1);
    if (b + 1 >= h.buckets.size()) {
      // The last bucket is unbounded; its lower edge is the only honest
      // answer (documented contract, asserted by tests).
      return lower;
    }
    const double upper = HistogramBucketBound(b);
    const double frac = std::clamp(
        (target - static_cast<double>(before)) / static_cast<double>(in_bucket),
        0.0, 1.0);
    return lower + frac * (upper - lower);
  }
  // Unreachable for a consistent snapshot (sum of buckets == count).
  return HistogramBucketBound(h.buckets.size() - 1);
}

std::string RenderOpenMetrics(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " counter\n";
    out += om + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " gauge\n";
    out += om + " " + std::to_string(value) + "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string om = OpenMetricsName(h.name);
    out += "# TYPE " + om + " summary\n";
    out += om + "_count " + std::to_string(h.count) + "\n";
    out += om + "_sum ";
    AppendDouble(out, h.sum);
    out += "\n";
    for (size_t i = 0; i < std::size(kQuantiles); ++i) {
      out += om + "{quantile=\"";
      out += kQuantileLabels[i];
      out += "\"} ";
      AppendDouble(out, HistogramQuantile(h, kQuantiles[i]));
      out += "\n";
    }
  }
  out += "# EOF\n";
  return out;
}

MetricsPublisher::MetricsPublisher(Options options)
    : options_(std::move(options)) {}

MetricsPublisher::~MetricsPublisher() { Stop(); }

Status MetricsPublisher::Start() {
  if (started_) {
    return Status::FailedPrecondition("publisher already started");
  }
  if (options_.jsonl_path.empty() && options_.openmetrics_path.empty()) {
    return Status::InvalidArgument(
        "publisher needs jsonl_path and/or openmetrics_path");
  }
  if (options_.interval_ms < 1) {
    return Status::InvalidArgument("publisher interval_ms must be >= 1");
  }
  {
    MutexLock lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this]() { Loop(); });
  started_ = true;
  return Status::Ok();
}

void MetricsPublisher::Stop() {
  if (!started_) return;
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  started_ = false;
  // Final flush after the thread is gone: the last published line always
  // reflects the registry state at (or after) Stop() entry, which is what
  // the snapshot-vs-final-registry consistency test pins down.
  PublishOnce();
}

MetricsSnapshot MetricsPublisher::LastSnapshot() const {
  MutexLock lock(mu_);
  return last_;
}

void MetricsPublisher::Loop() {
  while (true) {
    {
      MutexLock lock(mu_);
      if (stop_) return;
      // Predicate-free timed wait: stop_ is re-checked here with the lock
      // visibly held, keeping the thread-safety analysis exact. A spurious
      // wakeup at worst publishes one snapshot early, which is harmless.
      cv_.WaitForMillis(mu_, options_.interval_ms);
      if (stop_) return;
    }
    // mu_ is released during the publish itself (PublishOnce re-acquires
    // it only to store the last-snapshot copy); Stop() joining mid-publish
    // simply waits for this iteration to finish.
    PublishOnce();
  }
}

void MetricsPublisher::PublishOnce() {
  const Clock* clock =
      options_.clock != nullptr ? options_.clock : MonotonicClock::Get();
  const int64_t ts_ms = clock->NowNanos() / 1000000;
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const int64_t index = snapshots_.fetch_add(1, std::memory_order_relaxed);
  if (!options_.jsonl_path.empty()) {
    std::ofstream os(options_.jsonl_path, std::ios::app);
    if (os.is_open()) {
      os << "{\"type\":\"metrics_snapshot\",\"index\":" << index
         << ",\"ts_ms\":" << ts_ms << ",\"metrics\":" << snap.ToJson()
         << "}\n";
    }
  }
  if (!options_.openmetrics_path.empty()) {
    // Write-then-rename so scrapers reading the path never see a torn
    // exposition.
    const std::string tmp = options_.openmetrics_path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc);
      if (os.is_open()) os << RenderOpenMetrics(snap);
    }
    std::rename(tmp.c_str(), options_.openmetrics_path.c_str());
  }
  AddCount(names::kPublisherSnapshots, 1);
  MutexLock lock(mu_);
  last_ = std::move(snap);
}

}  // namespace obs
}  // namespace histest
