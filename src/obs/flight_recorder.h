#ifndef HISTEST_OBS_FLIGHT_RECORDER_H_
#define HISTEST_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace histest {
namespace obs {

/// Flight recorder: a fixed-size, lock-free, per-thread ring buffer of the
/// most recent span/metric events, kept so that a crashing or wedged
/// process can explain its last moments. The hooks are always compiled in
/// (TraceSpan begin/end, the name-addressed metric helpers, HISTEST_CHECK
/// failure); when the recorder is off — the default — each hook costs one
/// relaxed atomic load and a branch, the same discipline as obs::Enabled().
///
/// Dump triggers:
///   * fatal signals (SIGSEGV / SIGABRT) via an async-signal-safe writer,
///   * HISTEST_CHECK failure (a check_fail event is recorded through the
///     CheckFailedHook, then the abort's SIGABRT handler dumps),
///   * on demand (DumpNow), including at TraceRunGuard destruction.
///
/// The dump is JSONL: a header record (marked "dump":"flight_recorder"), a
/// manifest record (pre-rendered at enable time so the signal path never
/// allocates), then one record per surviving ring slot. There is
/// deliberately no trailing metrics record — tools/histest-trace
/// distinguishes recorder dumps from truncated traces by the header marker.
///
/// Memory-ordering contract (see DESIGN.md "Flight recorder" for the full
/// discussion): each ring has a single writer (its owning thread) and
/// best-effort readers. A slot is published by a per-slot sequence word —
/// odd while the writer is mid-update, 2*n+2 once event n is complete; all
/// payload fields are relaxed atomics, so a concurrent dump reads
/// tear-free values and discards any slot whose sequence does not match
/// before AND after the payload read. Rings are registered in a lock-free
/// pointer table and never freed, so the signal handler can walk them
/// without taking any lock and dead threads keep their history.
namespace internal_fr {
/// The recorder gate. An inline variable so the disabled-mode fast path in
/// FlightRecorder::Record really is one relaxed load + branch at the call
/// site, with no function-call indirection. Not part of the public API.
inline std::atomic<bool> g_enabled{false};
}  // namespace internal_fr

class FlightRecorder {
 public:
  enum class EventKind : uint8_t {
    kSpanBegin = 0,
    kSpanEnd = 1,
    kCount = 2,
    kGauge = 3,
    kHistogram = 4,
    kMark = 5,
    kCheckFail = 6,
  };

  /// Events kept per thread; older events are overwritten.
  static constexpr size_t kRingCapacity = 256;
  /// Maximum recorded name length (longer names are truncated).
  static constexpr size_t kMaxNameBytes = 47;
  /// Maximum threads with rings; later threads drop events.
  static constexpr size_t kMaxRings = 256;

  /// The relaxed-load gate every hook checks first. Off by default.
  static bool Enabled() {
    return internal_fr::g_enabled.load(std::memory_order_relaxed);
  }

  /// Turns the recorder on/off. Enabling pre-renders the manifest and dump
  /// path so the signal path needs no allocation; it does NOT install
  /// signal handlers (call InstallCrashHandlers for that).
  static void SetEnabled(bool on);

  /// Enables iff HISTEST_FLIGHT_RECORDER is set to anything but ""/"0"
  /// (and then also installs the crash handlers). Returns the resulting
  /// enabled state.
  static bool InitFromEnv();

  /// Appends one event to the calling thread's ring. No-op when disabled.
  /// `name` is truncated to kMaxNameBytes; the bytes are copied, so any
  /// lifetime is fine.
  static void Record(EventKind kind, std::string_view name, int64_t value) {
    if (!Enabled()) return;
    RecordSlow(kind, name, value);
  }

  /// Installs SIGSEGV/SIGABRT handlers (dump, restore default, re-raise)
  /// and the HISTEST_CHECK failure hook. Idempotent. The dump file is
  /// HISTEST_FLIGHT_RECORDER_OUT or "histest_flight_recorder.jsonl",
  /// resolved at install time.
  static void InstallCrashHandlers();

  /// Dumps all rings to `path` now (normal, non-signal context).
  /// `reason` lands in the header record.
  static Status DumpNow(const std::string& path, const char* reason);

  /// Total events ever recorded across all rings (test/monitoring aid;
  /// best-effort under concurrent writers).
  static uint64_t TotalEvents();

  /// Rewinds every ring and the dumped-once latch. Callers must ensure
  /// writers are quiescent. Test-only.
  static void ResetForTest();

 private:
  static void RecordSlow(EventKind kind, std::string_view name,
                         int64_t value);
};

/// Convenience alias for call sites.
using FrEventKind = FlightRecorder::EventKind;

}  // namespace obs
}  // namespace histest

#endif  // HISTEST_OBS_FLIGHT_RECORDER_H_
