#ifndef HISTEST_OBS_METRICS_H_
#define HISTEST_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace histest {
namespace obs {

/// Global observability switch. Off by default; when off every recording
/// entry point (Counter::Add, AddCount, SetGauge, ObserveHistogram,
/// TraceSpan) reduces to one relaxed atomic load and a branch, no clock is
/// ever read, and experiment output is byte-identical to an uninstrumented
/// build. Metrics and traces are diagnostics only — nothing in a verdict
/// path may read them back.
bool Enabled();
void SetEnabled(bool on);

/// Enables the layer iff HISTEST_TRACE is set to anything but "" or "0".
/// Returns the resulting enabled state.
bool InitFromEnv();

/// Number of independent per-thread shards per metric. Writers pick a shard
/// from a thread-local index (round-robin assigned on first use), so
/// concurrent increments touch distinct cache lines; readers merge on
/// snapshot.
inline constexpr size_t kMetricShards = 16;

/// Monotonically increasing sum, sharded per thread. Lock-free: Add is one
/// relaxed fetch_add on the calling thread's shard.
class Counter {
 public:
  void Add(int64_t delta) {
    if (!Enabled()) return;
    AddUngated(delta);
  }
  void Increment() { Add(1); }

  /// Merged value across shards (snapshot-consistent only when writers are
  /// quiescent, which is all observability needs).
  int64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void AddUngated(int64_t delta);
  void Reset();

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::string name_;
};

/// Last-written int64 value (thread count, queue depth, ...).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
  std::string name_;
};

/// Exponential-bucket histogram of nonnegative doubles (latencies in
/// seconds, sizes, ...). Bucket b holds observations in
/// (HistogramBucketBound(b-1), HistogramBucketBound(b)]; bucket 0 starts at
/// 0. Sharded like Counter; Observe is lock-free (bucket fetch_add plus a
/// CAS loop on the shard's double sum, uncontended in practice because
/// shards are per-thread).
inline constexpr size_t kHistogramBuckets = 40;

/// Upper bound of bucket b: kHistogramMinBound * 2^b (the last bucket is
/// unbounded).
double HistogramBucketBound(size_t b);
inline constexpr double kHistogramMinBound = 1e-9;

class HistogramMetric {
 public:
  void Observe(double value);

  int64_t Count() const;
  double Sum() const;
  /// Merged bucket counts, size kHistogramBuckets.
  std::vector<int64_t> Buckets() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit HistogramMetric(std::string name) : name_(std::move(name)) {}
  void Reset();

  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kMetricShards> shards_;
  std::string name_;
};

/// Point-in-time merged view of every registered metric, sorted by name.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  std::vector<int64_t> buckets;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// One stable-keyed JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// buckets}}}. Zero-count histograms serialize without their (all-zero)
  /// bucket array.
  std::string ToJson() const;
};

/// Registry of named metrics. Handles are created on first use and live for
/// the process (node-stable storage), so cached Counter*/Gauge* pointers
/// stay valid forever. Lookup takes a shared lock; hot paths should either
/// cache the handle or accept the lookup (recording is already gated off
/// when the layer is disabled).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  HistogramMetric& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (handles stay valid). Test-only.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  /// Guards the name->handle maps only: registration (writer) vs lookup
  /// and snapshot merge (readers). The metric objects behind the handles
  /// are lock-free (sharded atomics) and deliberately NOT guarded — once a
  /// handle escapes the map it is written without any lock, which is the
  /// whole point of the sharded design.
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HISTEST_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HISTEST_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_ HISTEST_GUARDED_BY(mu_);
};

/// Name-addressed recording helpers for call sites that must not hold
/// static handles (src/core and src/stats ban mutable static state). All
/// are no-ops when the layer is disabled; when enabled they pay one
/// shared-lock registry lookup, which is fine at stage/batch granularity.
void AddCount(std::string_view name, int64_t delta);
void SetGauge(std::string_view name, int64_t value);
void ObserveHistogram(std::string_view name, double value);

/// Escapes `s` for inclusion in a JSON string literal (shared by the trace
/// and report sinks).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace histest

#endif  // HISTEST_OBS_METRICS_H_
