#ifndef HISTEST_STATS_BOUNDS_H_
#define HISTEST_STATS_BOUNDS_H_

#include <cstddef>
#include <cstdint>

namespace histest {

/// Closed-form sample-complexity formulas from the paper and its cited
/// baselines, with the leading constant exposed. These drive the baselines'
/// sample budgets and the benchmark harness's theory-curve overlays.

/// Theorem 3.1 (this paper):
///   c * (sqrt(n)/eps^2 * log k + k/eps^3 * log^2 k + k/eps * log(k/eps)).
int64_t OursSampleComplexity(size_t n, size_t k, double eps, double c = 1.0);

/// [ILR12]: c * sqrt(kn)/eps^5 * log n.
int64_t IlrSampleComplexity(size_t n, size_t k, double eps, double c = 1.0);

/// [CDGR16]: c * sqrt(kn)/eps^3 * log n.
int64_t CdgrSampleComplexity(size_t n, size_t k, double eps, double c = 1.0);

/// [Pan08] uniformity lower bound: c * sqrt(n)/eps^2.
int64_t PaninskiSampleComplexity(size_t n, double eps, double c = 1.0);

/// Theorem 1.2 second term: c * (k / log k) / eps (log base 2, with
/// log k floored at 1).
int64_t SupportSizeTermLowerBound(size_t k, double eps, double c = 1.0);

/// The naive "learn everything" strawman: c * n / eps^2.
int64_t NaiveSampleComplexity(size_t n, double eps, double c = 1.0);

}  // namespace histest

#endif  // HISTEST_STATS_BOUNDS_H_
