#ifndef HISTEST_STATS_SUPPORT_SIZE_H_
#define HISTEST_STATS_SUPPORT_SIZE_H_

#include <cstddef>
#include <vector>

#include "dist/distribution.h"
#include "dist/empirical.h"

namespace histest {

/// cover(S) from Lemma 4.4: the number of maximal runs of consecutive
/// integers in the set S (given as any ordering of distinct positions).
/// cover of the empty set is 0.
size_t CoverNumber(std::vector<size_t> positions);

/// cover() of a distribution's support: the minimum number of intervals
/// needed for a histogram representation is 2 * cover(supp) - 1 at least
/// when the complement also splits pieces; this helper just counts support
/// runs.
size_t SupportCover(const Distribution& d);

/// Plug-in support-size estimate: number of distinct elements observed.
/// A lower bound on the true support size; accurate once m >> m_support
/// * log, and exactly the quantity the [VV10] lower bound proves hard to
/// improve with o(m / log m) samples.
size_t PlugInSupportSize(const CountVector& counts);

}  // namespace histest

#endif  // HISTEST_STATS_SUPPORT_SIZE_H_
