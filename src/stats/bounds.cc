#include "stats/bounds.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace histest {
namespace {

double SafeLog2(double x) { return std::max(1.0, std::log2(x)); }

void ValidateArgs(size_t n, size_t k, double eps) {
  HISTEST_CHECK_GT(n, 0u);
  HISTEST_CHECK_GT(k, 0u);
  HISTEST_CHECK_GT(eps, 0.0);
  HISTEST_CHECK_LE(eps, 1.0);
}

}  // namespace

int64_t OursSampleComplexity(size_t n, size_t k, double eps, double c) {
  ValidateArgs(n, k, eps);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  const double logk = SafeLog2(kd);
  const double term1 = std::sqrt(nd) / (eps * eps) * logk;
  const double term2 = kd / (eps * eps * eps) * logk * logk;
  const double term3 = kd / eps * SafeLog2(kd / eps);
  return CeilToCount(c * (term1 + term2 + term3));
}

int64_t IlrSampleComplexity(size_t n, size_t k, double eps, double c) {
  ValidateArgs(n, k, eps);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return CeilToCount(c * std::sqrt(kd * nd) / std::pow(eps, 5.0) *
                     SafeLog2(nd));
}

int64_t CdgrSampleComplexity(size_t n, size_t k, double eps, double c) {
  ValidateArgs(n, k, eps);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return CeilToCount(c * std::sqrt(kd * nd) / std::pow(eps, 3.0) *
                     SafeLog2(nd));
}

int64_t PaninskiSampleComplexity(size_t n, double eps, double c) {
  ValidateArgs(n, 1, eps);
  return CeilToCount(c * std::sqrt(static_cast<double>(n)) / (eps * eps));
}

int64_t SupportSizeTermLowerBound(size_t k, double eps, double c) {
  ValidateArgs(1, k, eps);
  const double kd = static_cast<double>(k);
  return CeilToCount(c * kd / SafeLog2(kd) / eps);
}

int64_t NaiveSampleComplexity(size_t n, double eps, double c) {
  ValidateArgs(n, 1, eps);
  return CeilToCount(c * static_cast<double>(n) / (eps * eps));
}

}  // namespace histest
