#ifndef HISTEST_STATS_ZSTAT_H_
#define HISTEST_STATS_ZSTAT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "dist/empirical.h"
#include "dist/interval.h"

namespace histest {

/// Configuration of the [ADK15] chi-square statistic of Proposition 3.3.
struct ZStatOptions {
  /// Elements enter A_eps iff dstar(i) >= aeps_factor * eps / n (the paper
  /// uses 1/50).
  double aeps_factor = 1.0 / 50.0;
};

/// Per-interval chi-square statistics:
///   Z_j = sum_{i in I_j, i in A_eps} ((N_i - m dstar(i))^2 - N_i) /
///         (m dstar(i)),
/// where N_i are Poissonized counts with budget parameter m. Under
/// Poissonization the Z_j are independent, E[Z_j] =
/// m * sum_{i in I_j cap A_eps} (D(i) - dstar(i))^2 / dstar(i).
struct ZStatResult {
  std::vector<double> z;  // one entry per partition interval
  double total = 0.0;     // sum of z (the full statistic Z)
};

/// Computes the statistics from Poissonized counts against the reference
/// pmf `dstar` over `partition` (a span, so arena-backed buffers work
/// without copying into a vector). If `active_intervals` is non-null,
/// inactive intervals get Z_j = 0 and do not contribute to the total.
/// Requires all sizes to agree and m > 0.
Result<ZStatResult> ComputeZStatistics(const CountVector& counts, double m,
                                       std::span<const double> dstar,
                                       const Partition& partition, double eps,
                                       const ZStatOptions& options = {},
                                       const std::vector<bool>* active_intervals =
                                           nullptr);

/// The exact expectation of Z_j under sampling from `d` (for tests and
/// calibration): m * sum over I_j cap A_eps of (d_i - dstar_i)^2 / dstar_i.
double ExpectedZ(std::span<const double> d, std::span<const double> dstar,
                 const Interval& interval, double m, double eps,
                 const ZStatOptions& options = {});

}  // namespace histest

#endif  // HISTEST_STATS_ZSTAT_H_
