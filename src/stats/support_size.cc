#include "stats/support_size.h"

#include <algorithm>

namespace histest {

size_t CoverNumber(std::vector<size_t> positions) {
  if (positions.empty()) return 0;
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  size_t runs = 1;
  for (size_t i = 1; i < positions.size(); ++i) {
    if (positions[i] != positions[i - 1] + 1) ++runs;
  }
  return runs;
}

size_t SupportCover(const Distribution& d) {
  std::vector<size_t> support;
  for (size_t i = 0; i < d.size(); ++i) {
    if (d[i] > 0.0) support.push_back(i);
  }
  return CoverNumber(std::move(support));
}

size_t PlugInSupportSize(const CountVector& counts) {
  return counts.DistinctCount();
}

}  // namespace histest
