#include "stats/poissonization.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace histest {

int64_t PoissonizedSampleCount(double m, Rng& rng) {
  HISTEST_CHECK_GE(m, 0.0);
  return rng.Poisson(m);
}

double PoissonTailBound(double mean, double dev) {
  HISTEST_CHECK_GT(dev, 0.0);
  HISTEST_CHECK_GE(mean, 0.0);
  if (ExactlyEqual(mean, 0.0)) return 0.0;
  // Two-sided Bennett bound: exp(-mean * h(dev/mean)) each side, with
  // h(u) = (1+u) log(1+u) - u; the lower tail is never worse.
  const double u = dev / mean;
  const double h = (1.0 + u) * std::log1p(u) - u;
  return std::min(1.0, 2.0 * std::exp(-mean * h));
}

}  // namespace histest
