#ifndef HISTEST_STATS_AMPLIFY_H_
#define HISTEST_STATS_AMPLIFY_H_

#include <functional>

namespace histest {

/// Number of independent repetitions needed to amplify a test with success
/// probability >= 2/3 to failure probability <= delta, by majority vote
/// (Chernoff: r = ceil(18 ln(1/delta)) suffices; we use the standard
/// constant and always return an odd count).
int RepetitionsForConfidence(double delta);

/// Runs `trial` an odd number `repetitions` of times and returns the
/// majority verdict. `repetitions` must be >= 1; even values are rounded up
/// to the next odd value.
bool MajorityVote(const std::function<bool()>& trial, int repetitions);

}  // namespace histest

#endif  // HISTEST_STATS_AMPLIFY_H_
