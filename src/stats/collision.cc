#include "stats/collision.h"

#include "common/check.h"
#include "common/kernels.h"
#include "common/math_util.h"

namespace histest {

double CollisionStatistic(const CountVector& counts) {
  const int64_t m = counts.total();
  HISTEST_CHECK_GE(m, 2);
  const double pairs = static_cast<double>(counts.CollisionPairs());
  const double all_pairs =
      0.5 * static_cast<double>(m) * static_cast<double>(m - 1);
  return pairs / all_pairs;
}

double RestrictedCollisionStatistic(const CountVector& counts,
                                    const Interval& interval) {
  HISTEST_CHECK_LE(interval.end, counts.size());
  int64_t m = 0;
  int64_t pairs = 0;
  // Zero counts contribute nothing, so only non-zero entries matter; this
  // keeps the scan O(#distinct) on sparse count vectors.
  counts.ForEachNonZero([&](size_t i, int64_t c) {
    if (i < interval.begin || i >= interval.end) return;
    m += c;
    pairs += c * (c - 1) / 2;
  });
  if (m < 2) return -1.0;
  const double all_pairs =
      0.5 * static_cast<double>(m) * static_cast<double>(m - 1);
  return static_cast<double>(pairs) / all_pairs;
}

double ExpectedCollisionStatistic(const std::vector<double>& d) {
  return SumSquaresKernel(d.data(), d.size());
}

double ExpectedCollisionStatistic(const PiecewiseConstant& d) {
  const size_t num_pieces = d.NumPieces();
  std::vector<double> values(num_pieces);
  std::vector<size_t> ends(num_pieces);
  for (size_t p = 0; p < num_pieces; ++p) {
    values[p] = d.pieces()[p].value;
    ends[p] = d.pieces()[p].interval.end;
  }
  // b == nullptr reads the expansion against the zero vector, so the L2
  // reduction is exactly sum_i v_i^2 in SumSquaresKernel's blocked order.
  return FusedExpandL2Kernel(values.data(), ends.data(), num_pieces,
                             /*b=*/nullptr, d.domain_size());
}

}  // namespace histest
