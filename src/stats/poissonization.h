#ifndef HISTEST_STATS_POISSONIZATION_H_
#define HISTEST_STATS_POISSONIZATION_H_

#include <cstdint>

#include "common/rng.h"

namespace histest {

/// Draws the Poissonized sample count m' ~ Poisson(m) used by the standard
/// Poissonization trick (Section 2): an algorithm budgeted for m samples
/// actually draws m' iid samples, making per-element counts independent.
int64_t PoissonizedSampleCount(double m, Rng& rng);

/// Chernoff-style upper bound on Pr[|Poisson(mean) - mean| >= dev] for
/// dev > 0 (Bennett's inequality specialization). Used to budget the
/// negligible failure probability the Poissonization trick introduces.
double PoissonTailBound(double mean, double dev);

}  // namespace histest

#endif  // HISTEST_STATS_POISSONIZATION_H_
