#include "stats/zstat.h"

#include "common/check.h"
#include "common/math_util.h"

namespace histest {

Result<ZStatResult> ComputeZStatistics(const CountVector& counts, double m,
                                       const std::vector<double>& dstar,
                                       const Partition& partition, double eps,
                                       const ZStatOptions& options,
                                       const std::vector<bool>* active_intervals) {
  if (counts.size() != dstar.size() ||
      partition.domain_size() != dstar.size()) {
    return Status::InvalidArgument("counts/dstar/partition size mismatch");
  }
  if (!(m > 0.0)) return Status::InvalidArgument("m must be positive");
  if (!(eps > 0.0) || eps > 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1]");
  }
  if (active_intervals != nullptr &&
      active_intervals->size() != partition.NumIntervals()) {
    return Status::InvalidArgument("active_intervals size mismatch");
  }
  const double aeps_cut =
      options.aeps_factor * eps / static_cast<double>(dstar.size());
  ZStatResult result;
  result.z.assign(partition.NumIntervals(), 0.0);
  KahanSum total;
  // Partition intervals ascend, so one forward cursor reads the counts in
  // O(1) amortized per element for both dense and sparse vectors.
  CountVector::Cursor reader(counts);
  for (size_t j = 0; j < partition.NumIntervals(); ++j) {
    if (active_intervals != nullptr && !(*active_intervals)[j]) continue;
    const Interval& iv = partition.interval(j);
    KahanSum zj;
    for (size_t i = iv.begin; i < iv.end; ++i) {
      if (dstar[i] < aeps_cut) continue;
      const double expected = m * dstar[i];
      const double ni = static_cast<double>(reader.At(i));
      const double dev = ni - expected;
      zj.Add((dev * dev - ni) / expected);
    }
    result.z[j] = zj.Total();
    total.Add(result.z[j]);
  }
  result.total = total.Total();
  return result;
}

double ExpectedZ(const std::vector<double>& d, const std::vector<double>& dstar,
                 const Interval& interval, double m, double eps,
                 const ZStatOptions& options) {
  HISTEST_CHECK_EQ(d.size(), dstar.size());
  HISTEST_CHECK_LE(interval.end, d.size());
  const double aeps_cut =
      options.aeps_factor * eps / static_cast<double>(dstar.size());
  KahanSum acc;
  for (size_t i = interval.begin; i < interval.end; ++i) {
    if (dstar[i] < aeps_cut) continue;
    const double dev = d[i] - dstar[i];
    acc.Add(dev * dev / dstar[i]);
  }
  return m * acc.Total();
}

}  // namespace histest
