#include "stats/zstat.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/kernels.h"
#include "common/math_util.h"

namespace histest {

Result<ZStatResult> ComputeZStatistics(const CountVector& counts, double m,
                                       std::span<const double> dstar,
                                       const Partition& partition, double eps,
                                       const ZStatOptions& options,
                                       const std::vector<bool>* active_intervals) {
  if (counts.size() != dstar.size() ||
      partition.domain_size() != dstar.size()) {
    return Status::InvalidArgument("counts/dstar/partition size mismatch");
  }
  if (!(m > 0.0)) return Status::InvalidArgument("m must be positive");
  if (!(eps > 0.0) || eps > 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1]");
  }
  if (active_intervals != nullptr &&
      active_intervals->size() != partition.NumIntervals()) {
    return Status::InvalidArgument("active_intervals size mismatch");
  }
  const double aeps_cut =
      options.aeps_factor * eps / static_cast<double>(dstar.size());
  ZStatResult result;
  result.z.assign(partition.NumIntervals(), 0.0);
  KahanSum total;
  if (!counts.is_sparse()) {
    // Dense counts: the fused kernel converts each int64 count in-register
    // and feeds it straight into the reduction — one pass over the interval
    // instead of stage-then-reduce. Bit-identity with the staged path below
    // holds because the fused kernel takes the identical blocked summation
    // order (and the KahanSum wrapping each staged block is exact on block
    // partials), preserving the bit-identical dense/sparse contract.
    const int64_t* raw = counts.counts().data();
    for (size_t j = 0; j < partition.NumIntervals(); ++j) {
      if (active_intervals != nullptr && !(*active_intervals)[j]) continue;
      const Interval& iv = partition.interval(j);
      result.z[j] = FusedCountsZKernel(dstar.data() + iv.begin,
                                       raw + iv.begin, iv.size(), m, aeps_cut);
      total.Add(result.z[j]);
    }
    result.total = total.Total();
    return result;
  }
  // Sparse counts: partition intervals ascend, so one forward cursor reads
  // the counts in O(1) amortized per element; counts are staged through a
  // fixed-size block buffer and reduced by the shared accumulation kernel,
  // the same summation order as the dense fused path above.
  CountVector::Cursor reader(counts);
  std::array<double, kKernelBlock> block;
  for (size_t j = 0; j < partition.NumIntervals(); ++j) {
    if (active_intervals != nullptr && !(*active_intervals)[j]) continue;
    const Interval& iv = partition.interval(j);
    KahanSum zj;
    for (size_t base = iv.begin; base < iv.end; base += kKernelBlock) {
      const size_t len = std::min(kKernelBlock, iv.end - base);
      for (size_t i = 0; i < len; ++i) {
        block[i] = static_cast<double>(reader.At(base + i));
      }
      zj.Add(ZAccumulateKernel(dstar.data() + base, block.data(), len, m,
                               aeps_cut));
    }
    result.z[j] = zj.Total();
    total.Add(result.z[j]);
  }
  result.total = total.Total();
  return result;
}

double ExpectedZ(std::span<const double> d, std::span<const double> dstar,
                 const Interval& interval, double m, double eps,
                 const ZStatOptions& options) {
  HISTEST_CHECK_EQ(d.size(), dstar.size());
  HISTEST_CHECK_LE(interval.end, d.size());
  const double aeps_cut =
      options.aeps_factor * eps / static_cast<double>(dstar.size());
  KahanSum acc;
  for (size_t i = interval.begin; i < interval.end; ++i) {
    if (dstar[i] < aeps_cut) continue;
    const double dev = d[i] - dstar[i];
    acc.Add(dev * dev / dstar[i]);
  }
  return m * acc.Total();
}

}  // namespace histest
