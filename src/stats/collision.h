#ifndef HISTEST_STATS_COLLISION_H_
#define HISTEST_STATS_COLLISION_H_

#include <cstdint>

#include "dist/empirical.h"
#include "dist/interval.h"
#include "dist/piecewise.h"

namespace histest {

/// The (normalized) collision statistic over the whole domain:
///   C = (number of colliding sample pairs) / C(m, 2).
/// E[C] = ||D||_2^2; for the uniform distribution this is 1/n, and any D
/// that is eps-far from uniform has ||D||_2^2 >= (1 + 4 eps^2)/n.
/// Requires at least 2 samples.
double CollisionStatistic(const CountVector& counts);

/// Collision statistic restricted to samples landing in `interval`
/// (conditional collision rate). Returns -1 if fewer than 2 samples landed
/// in the interval (statistic undefined).
double RestrictedCollisionStatistic(const CountVector& counts,
                                    const Interval& interval);

/// Expected value of the collision statistic under pmf `d` (= sum d_i^2).
double ExpectedCollisionStatistic(const std::vector<double>& d);

/// Same expectation for a succinct piecewise-constant pmf, computed by the
/// fused expand kernel without densifying: the pieces are streamed as runs
/// straight into the squared-sum reduction. Bit-identical to calling the
/// dense overload on d.ToDense().
double ExpectedCollisionStatistic(const PiecewiseConstant& d);

}  // namespace histest

#endif  // HISTEST_STATS_COLLISION_H_
