#include "stats/amplify.h"

#include <cmath>

#include "common/check.h"

namespace histest {

int RepetitionsForConfidence(double delta) {
  HISTEST_CHECK_GT(delta, 0.0);
  HISTEST_CHECK_LT(delta, 1.0);
  // Majority of r trials, each correct w.p. >= 2/3, errs w.p.
  // <= exp(-r/18) (Chernoff). Solve for r and make it odd.
  int r = static_cast<int>(std::ceil(18.0 * std::log(1.0 / delta)));
  if (r < 1) r = 1;
  if (r % 2 == 0) ++r;
  return r;
}

bool MajorityVote(const std::function<bool()>& trial, int repetitions) {
  HISTEST_CHECK_GE(repetitions, 1);
  if (repetitions % 2 == 0) ++repetitions;
  int yes = 0;
  for (int i = 0; i < repetitions; ++i) {
    if (trial()) ++yes;
    // Early exit once the majority is decided.
    const int remaining = repetitions - i - 1;
    if (2 * yes > repetitions || 2 * (yes + remaining) < repetitions + 1) {
      break;
    }
  }
  return yes > repetitions / 2;
}

}  // namespace histest
