#include "core/hk_check.h"

#include "common/check.h"

namespace histest {

std::vector<Interval> ActiveSubdomain(const Partition& partition,
                                      const std::vector<bool>& active) {
  HISTEST_CHECK_EQ(partition.NumIntervals(), active.size());
  std::vector<Interval> kept;
  for (size_t j = 0; j < partition.NumIntervals(); ++j) {
    if (!active[j]) continue;
    const Interval& iv = partition.interval(j);
    if (!kept.empty() && kept.back().end == iv.begin) {
      kept.back().end = iv.end;
    } else {
      kept.push_back(iv);
    }
  }
  return kept;
}

Result<HkCheckResult> CheckCloseToHkOnSubdomain(
    const PiecewiseConstant& dhat, const Partition& partition,
    const std::vector<bool>& active, size_t k, double eps,
    const HkCheckOptions& options) {
  if (partition.NumIntervals() != active.size()) {
    return Status::InvalidArgument("partition/active size mismatch");
  }
  if (partition.domain_size() != dhat.domain_size()) {
    return Status::InvalidArgument("partition/dhat domain mismatch");
  }
  if (!(eps > 0.0) || eps > 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1]");
  }
  const std::vector<Interval> kept = ActiveSubdomain(partition, active);
  if (kept.empty()) {
    // Everything was discarded: vacuously close.
    return HkCheckResult{true, DistanceBounds{0.0, 0.0}};
  }
  auto bounds =
      RestrictedDistanceToHkPieces(dhat, kept, k, options.distance);
  HISTEST_RETURN_IF_ERROR(bounds.status());
  HkCheckResult result;
  result.bounds = bounds.value();
  result.close = result.bounds.lower <= options.threshold_fraction * eps;
  return result;
}

}  // namespace histest
