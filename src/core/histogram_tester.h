#ifndef HISTEST_CORE_HISTOGRAM_TESTER_H_
#define HISTEST_CORE_HISTOGRAM_TESTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/approx_part.h"
#include "core/hk_check.h"
#include "core/learner.h"
#include "core/sieve.h"
#include "testing/identity_adk.h"
#include "testing/tester.h"

namespace histest {

/// All tuning of Algorithm 1. Two presets:
///  - Calibrated() (the default-constructed values): constants chosen so the
///    tester is correct at laptop scale; every statistic, threshold shape,
///    and control-flow decision matches the paper, only the leading
///    constants differ (validated empirically by experiment E4).
///  - PaperFaithful(): the literal constants from the paper's analysis
///    (b = 20 k log k / eps, learner accuracy eps/60, m >= 20000 sqrt(n) /
///    eps^2, thresholds 1/500 vs 1/5, ...). Astronomically conservative —
///    provided for reference and for tiny-domain demonstrations.
struct HistogramTesterOptions {
  /// ApproxPart parameter b = partition_b_constant * k * log2(k + 1) / eps
  /// (paper: 20), clamped to [1, n].
  double partition_b_constant = 8.0;
  ApproxPartOptions approx_part;

  /// Learner accuracy eps_l = learner_eps_fraction * eps (paper: 1/60).
  double learner_eps_fraction = 1.0 / 12.0;
  LearnerOptions learner;

  SieveOptions sieve;
  HkCheckOptions check;

  /// Final test distance eps' = final_eps_fraction * eps (paper: 13/30).
  double final_eps_fraction = 0.35;
  AdkOptions final_test;

  /// Multiplies every stage's sample constant; the knob the benchmark
  /// harness's minimal-budget search varies.
  double sample_scale = 1.0;

  /// The paper's literal constants.
  static HistogramTesterOptions PaperFaithful();
};

/// Per-stage accounting for diagnostics and the experiment harness.
struct StageReport {
  std::string stage;
  int64_t samples = 0;
  std::string info;
};

/// Extended outcome of a HistogramTester run.
struct HistogramTestReport {
  Verdict verdict = Verdict::kReject;
  int64_t samples_total = 0;
  /// Which stage produced the verdict ("sieve", "check", "final", or
  /// "trivial").
  std::string decided_by;
  size_t partition_size = 0;
  size_t removed_intervals = 0;
  std::vector<StageReport> stages;
};

/// Algorithm 1: the paper's tester for the class H_k of k-histograms.
///
///   1. ApproxPart with b = Theta(k log k / eps)  (Prop 3.4);
///   2. chi-square Laplace learner on the partition (Lemma 3.5);
///   3. sieve away up to O(k log k) breakpoint-suspect intervals
///      (Sec. 3.2.1);
///   4. offline DP check that the hypothesis is close to H_k on the kept
///      subdomain (Step 10, [CDGR16, Lemma 4.11]);
///   5. restricted [ADK15] chi^2-vs-TV test of D against the hypothesis
///      (Step 13, Theorem 3.2).
///
/// Completeness/soundness 2/3 per Theorem 3.1; sample complexity
/// O(sqrt(n)/eps^2 log k + k/eps^3 log^2 k + (k/eps) log(k/eps)).
class HistogramTester : public DistributionTester {
 public:
  HistogramTester(size_t k, double eps, HistogramTesterOptions options,
                  uint64_t seed);

  std::string Name() const override { return "histest-algorithm1"; }

  Result<TestOutcome> Test(SampleOracle& oracle) override;

  /// Like Test() but with per-stage accounting.
  Result<HistogramTestReport> TestWithReport(SampleOracle& oracle);

  size_t k() const { return k_; }
  double eps() const { return eps_; }

 private:
  size_t k_;
  double eps_;
  HistogramTesterOptions options_;
  Rng rng_;
};

}  // namespace histest

#endif  // HISTEST_CORE_HISTOGRAM_TESTER_H_
