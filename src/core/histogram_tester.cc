#include "core/histogram_tester.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <sstream>

#include "common/arena.h"
#include "common/check.h"
#include "common/math_util.h"
#include "obs/obs.h"
#include "obs/names.h"

namespace histest {

HistogramTesterOptions HistogramTesterOptions::PaperFaithful() {
  HistogramTesterOptions o;
  o.partition_b_constant = 20.0;
  o.learner_eps_fraction = 1.0 / 60.0;
  o.learner.sample_constant = 10.0;  // Markov with 9/10 success
  o.sieve.sample_constant = 20000.0;
  o.sieve.final_eps_fraction = 13.0 / 30.0;
  o.sieve.final_accept_threshold = 1.0 / 500.0;
  o.sieve.noise_sigmas = 0.0;  // the paper's m makes the null noise negligible
  o.check.threshold_fraction = 1.0 / 60.0;
  o.final_eps_fraction = 13.0 / 30.0;
  o.final_test.sample_constant = 20000.0;
  o.final_test.accept_threshold = 1.0 / 500.0;
  o.final_test.noise_sigmas = 0.0;
  return o;
}

HistogramTester::HistogramTester(size_t k, double eps,
                                 HistogramTesterOptions options, uint64_t seed)
    : k_(k), eps_(eps), options_(options), rng_(seed) {
  HISTEST_CHECK_GE(k_, 1u);
  HISTEST_CHECK_GT(eps_, 0.0);
  HISTEST_CHECK_LE(eps_, 1.0);
  HISTEST_CHECK_GT(options_.sample_scale, 0.0);
}

Result<TestOutcome> HistogramTester::Test(SampleOracle& oracle) {
  auto report = TestWithReport(oracle);
  HISTEST_RETURN_IF_ERROR(report.status());
  TestOutcome outcome;
  outcome.verdict = report.value().verdict;
  outcome.samples_used = report.value().samples_total;
  std::ostringstream detail;
  detail << "decided_by=" << report.value().decided_by
         << " K=" << report.value().partition_size
         << " removed=" << report.value().removed_intervals;
  outcome.detail = detail.str();
  return outcome;
}

Result<HistogramTestReport> HistogramTester::TestWithReport(
    SampleOracle& oracle) {
  const size_t n = oracle.DomainSize();
  HistogramTestReport report;
  const int64_t drawn_start = oracle.SamplesDrawn();

  // Root span for the whole run; stage spans nest under it. Inert (and the
  // helpers below are one load + branch each) unless tracing is enabled.
  obs::TraceSpan test_span(obs::names::kSpanHistogramTest);
  test_span.AnnotateInt("n", static_cast<int64_t>(n));
  test_span.AnnotateInt("k", static_cast<int64_t>(k_));
  test_span.AnnotateDouble("eps", eps_);
  const auto finish = [&](const HistogramTestReport& r) {
    test_span.AnnotateString("verdict", VerdictToString(r.verdict));
    test_span.AnnotateString("decided_by", r.decided_by);
    test_span.AnnotateInt("samples_total", r.samples_total);
    obs::AddCount(obs::names::kTesterRuns, 1);
  };

  // Trivial regime: every distribution over [0, n) is an n-histogram.
  if (k_ >= n) {
    report.verdict = Verdict::kAccept;
    report.decided_by = "trivial";
    report.stages.push_back(StageReport{"trivial", 0, "k >= n"});
    finish(report);
    return report;
  }

  // Apply the global sample scale to every stage's budget.
  HistogramTesterOptions opts = options_;
  opts.approx_part.sample_constant *= opts.sample_scale;
  opts.learner.sample_constant *= opts.sample_scale;
  opts.sieve.sample_constant *= opts.sample_scale;
  opts.final_test.sample_constant *= opts.sample_scale;

  // --- Step 1-3: ApproxPart. ---
  const double kd = static_cast<double>(k_);
  double b = opts.partition_b_constant * kd * std::log2(kd + 1.0) / eps_;
  b = std::max(1.0, std::min(b, static_cast<double>(n)));
  int64_t stage_start = oracle.SamplesDrawn();
  std::optional<obs::TraceSpan> stage_span;
  stage_span.emplace(obs::names::kSpanStageApproxPart);
  auto partition = ApproxPartition(oracle, b, opts.approx_part);
  {
    const int64_t drawn = oracle.SamplesDrawn() - stage_start;
    stage_span->AnnotateInt("samples_drawn", drawn);
    stage_span.reset();
    obs::AddCount(obs::names::kStageApproxPartSamplesDrawn, drawn);
  }
  HISTEST_RETURN_IF_ERROR(partition.status());
  report.partition_size = partition.value().NumIntervals();
  {
    std::ostringstream info;
    info << "b=" << b << " K=" << partition.value().NumIntervals();
    report.stages.push_back(StageReport{
        "approx_part", oracle.SamplesDrawn() - stage_start, info.str()});
  }

  // --- Step 4: chi-square learner. ---
  stage_start = oracle.SamplesDrawn();
  const double eps_learn = opts.learner_eps_fraction * eps_;
  stage_span.emplace(obs::names::kSpanStageLearner);
  auto dhat = LearnHistogramChiSquare(oracle, partition.value(), eps_learn,
                                      opts.learner);
  {
    const int64_t drawn = oracle.SamplesDrawn() - stage_start;
    stage_span->AnnotateInt("samples_drawn", drawn);
    stage_span.reset();
    obs::AddCount(obs::names::kStageLearnerSamplesDrawn, drawn);
  }
  HISTEST_RETURN_IF_ERROR(dhat.status());
  report.stages.push_back(StageReport{
      "learner", oracle.SamplesDrawn() - stage_start,
      "eps_l=" + std::to_string(eps_learn)});
  // The hypothesis's dense expansion is the run's dominant O(n) temporary;
  // it comes from the thread's scratch arena, so repeated Test() calls on
  // one thread (the trial loop) reuse the same retained chunks instead of
  // allocating n doubles per trial. The downstream stages take spans, so
  // no vector is ever formed.
  ScratchArena& arena = ScratchArena::ThreadLocal();
  const ScratchArena::Scope arena_scope(arena);
  double* dstar_storage = arena.Alloc<double>(n);
  dhat.value().ToDenseInto(std::span<double>(dstar_storage, n));
  const std::span<const double> dstar(dstar_storage, n);
  obs::SetGauge(obs::names::kTrialArenaBytes,
                static_cast<int64_t>(arena.bytes_reserved()));

  // --- Steps 6-8: sieving. ---
  stage_start = oracle.SamplesDrawn();
  stage_span.emplace(obs::names::kSpanStageSieve);
  auto sieve = SieveIntervals(oracle, dstar, partition.value(), k_, eps_,
                              opts.sieve, rng_);
  {
    const int64_t drawn = oracle.SamplesDrawn() - stage_start;
    stage_span->AnnotateInt("samples_drawn", drawn);
    stage_span.reset();
    obs::AddCount(obs::names::kStageSieveSamplesDrawn, drawn);
  }
  HISTEST_RETURN_IF_ERROR(sieve.status());
  report.removed_intervals =
      sieve.value().removed_heavy + sieve.value().removed_iterative;
  report.stages.push_back(StageReport{"sieve",
                                      oracle.SamplesDrawn() - stage_start,
                                      sieve.value().detail});
  if (sieve.value().rejected) {
    report.verdict = Verdict::kReject;
    report.decided_by = "sieve";
    report.samples_total = oracle.SamplesDrawn() - drawn_start;
    finish(report);
    return report;
  }

  // --- Step 10: offline closeness check on the kept subdomain. ---
  stage_span.emplace(obs::names::kSpanStageCheck);
  auto check = CheckCloseToHkOnSubdomain(dhat.value(), partition.value(),
                                         sieve.value().active, k_, eps_,
                                         opts.check);
  stage_span->AnnotateInt("samples_drawn", 0);
  stage_span.reset();
  HISTEST_RETURN_IF_ERROR(check.status());
  {
    std::ostringstream info;
    info << "dist(Dhat,Hk|G) in [" << check.value().bounds.lower << ", "
         << check.value().bounds.upper << "] threshold="
         << opts.check.threshold_fraction * eps_;
    report.stages.push_back(StageReport{"check", 0, info.str()});
  }
  if (!check.value().close) {
    report.verdict = Verdict::kReject;
    report.decided_by = "check";
    report.samples_total = oracle.SamplesDrawn() - drawn_start;
    finish(report);
    return report;
  }

  // --- Step 13: restricted [ADK15] identity test against the hypothesis. --
  stage_start = oracle.SamplesDrawn();
  const double eps_final = opts.final_eps_fraction * eps_;
  const double m_final = opts.final_test.sample_constant *
                         std::sqrt(static_cast<double>(n)) /
                         (eps_final * eps_final);
  stage_span.emplace(obs::names::kSpanStageFinal);
  auto final_outcome = AdkRestrictedIdentityTest(
      oracle, dstar, partition.value(), sieve.value().active, eps_final,
      m_final, opts.final_test, rng_);
  {
    const int64_t drawn = oracle.SamplesDrawn() - stage_start;
    stage_span->AnnotateInt("samples_drawn", drawn);
    stage_span.reset();
    obs::AddCount(obs::names::kStageFinalSamplesDrawn, drawn);
  }
  HISTEST_RETURN_IF_ERROR(final_outcome.status());
  report.stages.push_back(StageReport{"final",
                                      oracle.SamplesDrawn() - stage_start,
                                      final_outcome.value().detail});
  report.verdict = final_outcome.value().verdict;
  report.decided_by = "final";
  report.samples_total = oracle.SamplesDrawn() - drawn_start;
  finish(report);
  return report;
}

}  // namespace histest
