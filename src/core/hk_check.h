#ifndef HISTEST_CORE_HK_CHECK_H_
#define HISTEST_CORE_HK_CHECK_H_

#include <vector>

#include "common/status.h"
#include "dist/interval.h"
#include "dist/piecewise.h"
#include "histogram/distance_to_hk.h"

namespace histest {

/// Tuning of Algorithm 1's Step-10 offline check.
struct HkCheckOptions {
  /// Accept when the certified lower bound on the restricted distance is at
  /// most threshold_fraction * eps. The paper uses eps/60 with its literal
  /// constants; the calibrated default matches the calibrated learner
  /// accuracy (see HistogramTesterOptions).
  double threshold_fraction = 1.0 / 12.0;
  HkDistanceOptions distance;
};

/// Outcome of the Step-10 check, with the computed distance bracket for
/// diagnostics.
struct HkCheckResult {
  bool close = false;
  DistanceBounds bounds;
};

/// Step 10 of Algorithm 1: decides whether some k-histogram is
/// (threshold_fraction * eps)-close to the learned hypothesis `dhat` in
/// total variation restricted to the kept subdomain G (the union of active
/// partition intervals). Computed offline by the dynamic program of
/// [CDGR16, Lemma 4.11] (see RestrictedDistanceToHkPieces).
Result<HkCheckResult> CheckCloseToHkOnSubdomain(
    const PiecewiseConstant& dhat, const Partition& partition,
    const std::vector<bool>& active, size_t k, double eps,
    const HkCheckOptions& options = {});

/// Merges the active intervals of a partition into maximal contiguous kept
/// intervals (the subdomain G).
std::vector<Interval> ActiveSubdomain(const Partition& partition,
                                      const std::vector<bool>& active);

}  // namespace histest

#endif  // HISTEST_CORE_HK_CHECK_H_
