#ifndef HISTEST_CORE_LEARNER_H_
#define HISTEST_CORE_LEARNER_H_

#include "common/status.h"
#include "dist/interval.h"
#include "dist/piecewise.h"
#include "testing/tester.h"

namespace histest {

/// Tuning of the chi-square histogram learner (Lemma 3.5).
struct LearnerOptions {
  /// Sample count m = ceil(sample_constant * K / eps^2) where K is the
  /// partition size. Lemma 3.5's Markov argument uses a constant of 10 for
  /// a 9/10 success probability; the calibrated default relies on the
  /// expectation bound E[chi^2] <= K/m with a 3x margin.
  double sample_constant = 4.0;
};

/// The Laplace ("add-one") interval estimator of Lemma 3.5: draws
/// m = O(K / eps^2) samples and outputs the K-piece histogram
///   Dhat(j) = (m_I + 1) / (m + K) * 1 / |I|   for j in I.
///
/// Guarantee: if D is a k-histogram (k <= K) and J are its breakpoint
/// intervals, then with probability >= 9/10 the flattened distribution
/// D-tilde^J satisfies d_chi^2(D-tilde^J || Dhat) <= eps^2, i.e., the
/// hypothesis is chi^2-accurate everywhere except possibly on breakpoint
/// intervals. The output always has total mass exactly 1.
Result<PiecewiseConstant> LearnHistogramChiSquare(
    SampleOracle& oracle, const Partition& partition, double eps,
    const LearnerOptions& options = {});

}  // namespace histest

#endif  // HISTEST_CORE_LEARNER_H_
