#ifndef HISTEST_CORE_KMODAL_TESTER_H_
#define HISTEST_CORE_KMODAL_TESTER_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "core/approx_part.h"
#include "core/learner.h"
#include "core/sieve.h"
#include "testing/identity_adk.h"
#include "testing/tester.h"

namespace histest {

/// Tuning of the k-modal tester (same knobs as HistogramTesterOptions; the
/// partition parameter gains a log n factor because flattening a *smooth*
/// monotone run over equal-mass intervals costs ~log(n)/K, unlike the
/// piecewise-constant case — Birgé's decomposition).
struct KModalTesterOptions {
  /// b = partition_b_constant * (k + 1) * log2(n + 1) / eps.
  double partition_b_constant = 6.0;
  ApproxPartOptions approx_part;
  double learner_eps_fraction = 1.0 / 16.0;
  LearnerOptions learner;
  SieveOptions sieve;
  /// Offline check: hypothesis must be (fraction * eps)-close in restricted
  /// TV to some <= k direction-change function on the kept subdomain.
  double check_threshold_fraction = 1.0 / 10.0;
  size_t check_coarsen_limit = 512;
  double final_eps_fraction = 0.35;
  AdkOptions final_test;
  double sample_scale = 1.0;
};

/// Tester for the class of k-modal distributions — pmfs whose direction
/// changes ("up-down" switches) number at most k. This is the class the
/// paper's remark after Theorem 1.2 extends the lower bound to; the tester
/// instantiates the same testing-by-learning pipeline as Algorithm 1
/// (partition, chi-square learner, sieve, offline projection check, [ADK15]
/// verification) with the H_k dynamic program replaced by the exact
/// L1-isotonic (PAVA) k-modal projection. k = 0 tests monotonicity, k = 1
/// unimodality.
class KModalTester : public DistributionTester {
 public:
  KModalTester(size_t max_changes, double eps, KModalTesterOptions options,
               uint64_t seed);

  std::string Name() const override { return "histest-kmodal"; }
  Result<TestOutcome> Test(SampleOracle& oracle) override;

  size_t max_changes() const { return max_changes_; }

 private:
  size_t max_changes_;
  double eps_;
  KModalTesterOptions options_;
  Rng rng_;
};

}  // namespace histest

#endif  // HISTEST_CORE_KMODAL_TESTER_H_
