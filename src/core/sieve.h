#ifndef HISTEST_CORE_SIEVE_H_
#define HISTEST_CORE_SIEVE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dist/interval.h"
#include "stats/zstat.h"
#include "testing/tester.h"

namespace histest {

/// Tuning of the sieving stage (Section 3.2.1). The paper states its
/// thresholds in units of m*alpha^2 for a free constant alpha = eps/C; the
/// calibrated implementation ties them directly to the final [ADK15] test's
/// acceptance threshold T = final_accept_threshold * m * (eps')^2, which is
/// the quantity the sieve exists to protect (see DESIGN.md).
struct SieveOptions {
  /// Z-pass budget m = sample_constant * sqrt(n) / eps^2; the sieve runs
  /// O(log k) such passes, giving the sqrt(n)/eps^2 * log k leading term.
  double sample_constant = 150.0;
  /// eps' = final_eps_fraction * eps of the downstream test (Step 13).
  double final_eps_fraction = 0.35;
  /// Acceptance rate of the downstream test (Z <= rate * m * eps'^2).
  double final_accept_threshold = 0.12;
  /// Heavy stage: remove interval j when its median Z_j exceeds
  /// heavy_fraction * T.
  double heavy_fraction = 0.5;
  /// Iterative stage stops once the active total Z is at most
  /// stop_fraction * T + noise_sigmas * sigma(Z | null).
  double stop_fraction = 0.4;
  /// Per-round removal target: remove the largest statistics until the
  /// remaining total is at most target_fraction * T + noise.
  double target_fraction = 0.2;
  /// Gaussian slack for the null fluctuation of Z (sd = sqrt(2 * |A_eps|)).
  double noise_sigmas = 2.5;
  /// Median repetitions in the heavy stage; 0 derives
  /// min(2 ceil(log2(k+1)) + 1, 7) (the paper's log(1/delta) with
  /// delta = 1/(10(k+1)), capped for laptop budgets).
  int heavy_repetitions = 0;
  /// Iterative rounds; 0 derives ceil(log2(k+1)).
  int max_rounds = 0;
  ZStatOptions zstat;
};

/// What the sieve decided.
struct SieveResult {
  /// Surviving intervals (true = kept). All removed intervals are
  /// non-singletons, so the ApproxPart mass guarantee bounds the discarded
  /// probability weight.
  std::vector<bool> active;
  /// True when the sieve itself detected far-ness (removal budget
  /// exhausted): Algorithm 1 must output reject.
  bool rejected = false;
  size_t removed_heavy = 0;
  size_t removed_iterative = 0;
  int rounds_used = 0;
  int64_t samples_used = 0;
  std::string detail;
};

/// Runs the two-stage sieve against the learned hypothesis `dstar` (dense,
/// passed as a span so arena-backed buffers work): first discards intervals
/// whose median Z is individually damning, then iteratively removes the
/// largest remaining statistics until the total is consistent with
/// chi^2-closeness, up to O(log k) rounds and O(k log k) removals in total.
Result<SieveResult> SieveIntervals(SampleOracle& oracle,
                                   std::span<const double> dstar,
                                   const Partition& partition, size_t k,
                                   double eps, const SieveOptions& options,
                                   Rng& rng);

}  // namespace histest

#endif  // HISTEST_CORE_SIEVE_H_
