#include "core/kmodal_tester.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "core/hk_check.h"
#include "histogram/modality.h"

namespace histest {

KModalTester::KModalTester(size_t max_changes, double eps,
                           KModalTesterOptions options, uint64_t seed)
    : max_changes_(max_changes), eps_(eps), options_(options), rng_(seed) {
  HISTEST_CHECK_GT(eps_, 0.0);
  HISTEST_CHECK_LE(eps_, 1.0);
  HISTEST_CHECK_GT(options_.sample_scale, 0.0);
}

Result<TestOutcome> KModalTester::Test(SampleOracle& oracle) {
  const size_t n = oracle.DomainSize();
  const int64_t drawn_start = oracle.SamplesDrawn();
  TestOutcome outcome;

  // Trivial regime: any pmf over [0, n) has at most n - 1 direction
  // changes.
  if (max_changes_ + 1 >= n) {
    outcome.verdict = Verdict::kAccept;
    outcome.detail = "trivial: max_changes >= n - 1";
    return outcome;
  }

  KModalTesterOptions opts = options_;
  opts.approx_part.sample_constant *= opts.sample_scale;
  opts.learner.sample_constant *= opts.sample_scale;
  opts.sieve.sample_constant *= opts.sample_scale;
  opts.final_test.sample_constant *= opts.sample_scale;

  // The sieve's removal budget is keyed by the number of intervals that
  // can hide a direction change.
  const size_t k_budget = max_changes_ + 1;

  // Stage 1: partition. The log n factor covers the flattening error of
  // smooth monotone runs.
  double b = opts.partition_b_constant * static_cast<double>(k_budget) *
             std::log2(static_cast<double>(n) + 1.0) / eps_;
  b = std::max(1.0, std::min(b, static_cast<double>(n)));
  auto partition = ApproxPartition(oracle, b, opts.approx_part);
  HISTEST_RETURN_IF_ERROR(partition.status());

  // Stage 2: chi-square learner.
  const double eps_learn = opts.learner_eps_fraction * eps_;
  auto dhat = LearnHistogramChiSquare(oracle, partition.value(), eps_learn,
                                      opts.learner);
  HISTEST_RETURN_IF_ERROR(dhat.status());
  const std::vector<double> dstar = dhat.value().ToDense();

  // Stage 3: sieve away intervals whose statistics are inconsistent with
  // the hypothesis (mode switches and heavy-variation spots).
  auto sieve = SieveIntervals(oracle, dstar, partition.value(), k_budget,
                              eps_, opts.sieve, rng_);
  HISTEST_RETURN_IF_ERROR(sieve.status());
  if (sieve.value().rejected) {
    outcome.verdict = Verdict::kReject;
    outcome.samples_used = oracle.SamplesDrawn() - drawn_start;
    outcome.detail = "kmodal/sieve: " + sieve.value().detail;
    return outcome;
  }

  // Stage 4: offline k-modal projection check on the kept subdomain.
  const std::vector<Interval> kept =
      ActiveSubdomain(partition.value(), sieve.value().active);
  if (!kept.empty()) {
    auto check = RestrictedDistanceToKModal(dhat.value(), kept, max_changes_,
                                            opts.check_coarsen_limit);
    HISTEST_RETURN_IF_ERROR(check.status());
    if (check.value().lower > opts.check_threshold_fraction * eps_) {
      outcome.verdict = Verdict::kReject;
      outcome.samples_used = oracle.SamplesDrawn() - drawn_start;
      std::ostringstream detail;
      detail << "kmodal/check: dist(Dhat, " << max_changes_
             << "-modal | G) >= " << check.value().lower << " > "
             << opts.check_threshold_fraction * eps_;
      outcome.detail = detail.str();
      return outcome;
    }
  }

  // Stage 5: restricted [ADK15] verification against the hypothesis.
  const double eps_final = opts.final_eps_fraction * eps_;
  const double m_final = opts.final_test.sample_constant *
                         std::sqrt(static_cast<double>(n)) /
                         (eps_final * eps_final);
  auto final_outcome = AdkRestrictedIdentityTest(
      oracle, dstar, partition.value(), sieve.value().active, eps_final,
      m_final, opts.final_test, rng_);
  HISTEST_RETURN_IF_ERROR(final_outcome.status());
  outcome.verdict = final_outcome.value().verdict;
  outcome.samples_used = oracle.SamplesDrawn() - drawn_start;
  outcome.detail = "kmodal/final: " + final_outcome.value().detail;
  return outcome;
}

}  // namespace histest
