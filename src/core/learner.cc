#include "core/learner.h"

#include "common/check.h"
#include "common/math_util.h"

namespace histest {

Result<PiecewiseConstant> LearnHistogramChiSquare(
    SampleOracle& oracle, const Partition& partition, double eps,
    const LearnerOptions& options) {
  if (!(eps > 0.0) || eps > 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1]");
  }
  if (oracle.DomainSize() != partition.domain_size()) {
    return Status::InvalidArgument("oracle/partition domain mismatch");
  }
  const size_t big_k = partition.NumIntervals();
  const int64_t m = CeilToCount(options.sample_constant *
                                static_cast<double>(big_k) / (eps * eps));
  const CountVector counts = oracle.DrawCounts(m);
  const std::vector<int64_t> interval_counts = counts.IntervalCounts(partition);
  const double denom = static_cast<double>(m) + static_cast<double>(big_k);
  std::vector<double> masses(big_k);
  for (size_t j = 0; j < big_k; ++j) {
    masses[j] = (static_cast<double>(interval_counts[j]) + 1.0) / denom;
  }
  return PiecewiseConstant::FromPartitionMasses(partition, masses);
}

}  // namespace histest
