#ifndef HISTEST_CORE_APPROX_PART_H_
#define HISTEST_CORE_APPROX_PART_H_

#include "common/status.h"
#include "dist/interval.h"
#include "testing/tester.h"

namespace histest {

/// Tuning of the ApproxPart partitioner (Proposition 3.4 / [ADK15, Claim 1]).
struct ApproxPartOptions {
  /// Sample budget m = ceil(sample_constant * b * log2(b + 2)).
  double sample_constant = 10.0;
  /// An element becomes a singleton interval when its empirical mass is at
  /// least singleton_threshold / b (targets the D(i) >= 1/b guarantee).
  double singleton_threshold = 0.75;
  /// A growing interval is closed once its cumulative empirical mass
  /// reaches close_threshold / b (targets the [1/(2b), 2/b] guarantee).
  double close_threshold = 0.75;
};

/// Draws O(b log b) samples and returns a partition of the domain into
/// K <= 2b + 2 intervals such that, with probability >= 9/10:
///   (i)   every element with D(i) >= 1/b is a singleton interval;
///   (ii)  at most two intervals have D(I) < 1/(2b);
///   (iii) every other interval has D(I) in [1/(2b), 2/b].
/// Requires b > 0. The greedy construction sweeps the empirical
/// distribution left to right, emitting singletons for heavy elements and
/// closing accumulating intervals at the mass threshold.
Result<Partition> ApproxPartition(SampleOracle& oracle, double b,
                                  const ApproxPartOptions& options = {});

}  // namespace histest

#endif  // HISTEST_CORE_APPROX_PART_H_
