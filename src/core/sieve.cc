#include "core/sieve.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"
#include "obs/obs.h"
#include "obs/names.h"
#include "stats/poissonization.h"

namespace histest {
namespace {

/// Number of A_eps elements inside active intervals: the null variance of
/// the total Z statistic is twice this count.
double ActiveAepsCount(std::span<const double> dstar,
                       const Partition& partition,
                       const std::vector<bool>& active, double eps,
                       const ZStatOptions& zstat) {
  const double cut = zstat.aeps_factor * eps / static_cast<double>(dstar.size());
  double count = 0.0;
  for (size_t j = 0; j < partition.NumIntervals(); ++j) {
    if (!active[j]) continue;
    const Interval& iv = partition.interval(j);
    for (size_t i = iv.begin; i < iv.end; ++i) {
      if (dstar[i] >= cut) count += 1.0;
    }
  }
  return count;
}

}  // namespace

Result<SieveResult> SieveIntervals(SampleOracle& oracle,
                                   std::span<const double> dstar,
                                   const Partition& partition, size_t k,
                                   double eps, const SieveOptions& options,
                                   Rng& rng) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (!(eps > 0.0) || eps > 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1]");
  }
  if (oracle.DomainSize() != dstar.size() ||
      partition.domain_size() != dstar.size()) {
    return Status::InvalidArgument("oracle/dstar/partition size mismatch");
  }
  const size_t big_k = partition.NumIntervals();
  const double n = static_cast<double>(dstar.size());
  const double m = options.sample_constant * std::sqrt(n) / (eps * eps);
  const double eps_final = options.final_eps_fraction * eps;
  const double big_t =
      options.final_accept_threshold * m * eps_final * eps_final;

  const int log_k = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(k) + 1.0)));
  int heavy_reps = options.heavy_repetitions;
  if (heavy_reps <= 0) heavy_reps = std::min(2 * log_k + 1, 7);
  int max_rounds = options.max_rounds;
  if (max_rounds <= 0) max_rounds = std::max(log_k, 1);

  SieveResult result;
  result.active.assign(big_k, true);
  const int64_t drawn_before = oracle.SamplesDrawn();

  // Candidate / survivor accounting, recorded at both exit paths.
  const auto record_counts = [&]() {
    if (!obs::Enabled()) return;
    int64_t survivors = 0;
    for (size_t j = 0; j < big_k; ++j) {
      if (result.active[j]) ++survivors;
    }
    obs::AddCount(obs::names::kSieveCandidates, static_cast<int64_t>(big_k));
    obs::AddCount(obs::names::kSieveSurvivors, survivors);
    obs::AddCount(obs::names::kSieveRemovedHeavy,
                  static_cast<int64_t>(result.removed_heavy));
    obs::AddCount(obs::names::kSieveRemovedIterative,
                  static_cast<int64_t>(result.removed_iterative));
    obs::AddCount(obs::names::kSieveRounds,
                  static_cast<int64_t>(result.rounds_used));
  };

  // The A_eps truncation must match the downstream test's (which runs at
  // eps'): otherwise light breakpoint intervals that the final statistic
  // scores would be invisible to the sieve.
  auto one_z_pass = [&]() -> Result<ZStatResult> {
    const int64_t actual = PoissonizedSampleCount(m, rng);
    const CountVector counts = oracle.DrawCounts(actual);
    return ComputeZStatistics(counts, m, dstar, partition, eps_final,
                              options.zstat, &result.active);
  };

  // --- Stage 1: discard individually heavy intervals (median of
  // repetitions, so a fluke pass cannot doom a good interval). ---
  std::vector<std::vector<double>> reps(static_cast<size_t>(heavy_reps));
  for (auto& rep : reps) {
    auto z = one_z_pass();
    HISTEST_RETURN_IF_ERROR(z.status());
    rep = std::move(z.value().z);
  }
  const double heavy_cut = options.heavy_fraction * big_t;
  for (size_t j = 0; j < big_k; ++j) {
    if (partition.interval(j).size() < 2) continue;  // singletons immune
    std::vector<double> zj(reps.size());
    for (size_t r = 0; r < reps.size(); ++r) zj[r] = reps[r][j];
    if (MedianOf(std::move(zj)) > heavy_cut) {
      result.active[j] = false;
      ++result.removed_heavy;
    }
  }
  if (result.removed_heavy > k) {
    result.rejected = true;
    result.samples_used = oracle.SamplesDrawn() - drawn_before;
    std::ostringstream detail;
    detail << "sieve: " << result.removed_heavy
           << " individually heavy intervals (> k = " << k << ")";
    result.detail = detail.str();
    record_counts();
    return result;
  }

  // --- Stage 2: iterative removal of the largest statistics. ---
  const size_t removal_budget =
      k * static_cast<size_t>(std::max(max_rounds, 1));
  for (int round = 0; round < max_rounds; ++round) {
    ++result.rounds_used;
    auto z = one_z_pass();
    HISTEST_RETURN_IF_ERROR(z.status());
    const double sigma = std::sqrt(2.0 * ActiveAepsCount(dstar, partition,
                                                         result.active,
                                                         eps_final,
                                                         options.zstat));
    const double noise = options.noise_sigmas * sigma;
    if (z.value().total <= options.stop_fraction * big_t + noise) break;
    // Sort removable intervals by decreasing statistic.
    std::vector<size_t> order;
    for (size_t j = 0; j < big_k; ++j) {
      if (result.active[j] && partition.interval(j).size() >= 2) {
        order.push_back(j);
      }
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return z.value().z[a] > z.value().z[b];
    });
    double remaining = z.value().total;
    size_t removed_this_round = 0;
    const double target = options.target_fraction * big_t + noise;
    for (size_t j : order) {
      if (remaining <= target || removed_this_round >= k) break;
      if (z.value().z[j] <= 0.0) break;  // nothing damning left to remove
      result.active[j] = false;
      // analyzer-allow(raw-accumulate): greedy removal loop; the early-exit
      // condition reads the running value after every step, so the
      // sequential order is the algorithm, not a reduction.
      remaining -= z.value().z[j];
      ++removed_this_round;
      ++result.removed_iterative;
    }
    if (result.removed_iterative > removal_budget) {
      result.rejected = true;
      break;
    }
  }

  result.samples_used = oracle.SamplesDrawn() - drawn_before;
  std::ostringstream detail;
  detail << "sieve: removed_heavy=" << result.removed_heavy
         << " removed_iterative=" << result.removed_iterative
         << " rounds=" << result.rounds_used << " T=" << big_t
         << (result.rejected ? " -> reject (removal budget exhausted)" : "");
  result.detail = detail.str();
  record_counts();
  return result;
}

}  // namespace histest
