#include "core/approx_part.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace histest {

Result<Partition> ApproxPartition(SampleOracle& oracle, double b,
                                  const ApproxPartOptions& options) {
  if (!(b > 0.0)) return Status::InvalidArgument("b must be positive");
  const size_t n = oracle.DomainSize();
  const int64_t m =
      CeilToCount(options.sample_constant * b * std::log2(b + 2.0));
  const CountVector counts = oracle.DrawCounts(m);
  const double md = static_cast<double>(counts.total());
  const double singleton_cut = options.singleton_threshold / b;
  const double close_cut = options.close_threshold / b;

  std::vector<Interval> intervals;
  size_t open_begin = 0;
  bool has_open = false;
  double open_mass = 0.0;
  auto close_open = [&](size_t end) {
    if (has_open) {
      intervals.push_back(Interval{open_begin, end});
      has_open = false;
      open_mass = 0.0;
    }
  };
  for (size_t i = 0; i < n; ++i) {
    const double emp = static_cast<double>(counts[i]) / md;
    if (emp >= singleton_cut) {
      close_open(i);
      intervals.push_back(Interval{i, i + 1});
      continue;
    }
    if (!has_open) {
      open_begin = i;
      has_open = true;
    }
    open_mass += emp;
    if (open_mass >= close_cut) close_open(i + 1);
  }
  close_open(n);
  return Partition::Create(n, std::move(intervals));
}

}  // namespace histest
