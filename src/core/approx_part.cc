#include "core/approx_part.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace histest {

Result<Partition> ApproxPartition(SampleOracle& oracle, double b,
                                  const ApproxPartOptions& options) {
  if (!(b > 0.0)) return Status::InvalidArgument("b must be positive");
  if (!(options.singleton_threshold > 0.0) ||
      !(options.close_threshold > 0.0)) {
    return Status::InvalidArgument("thresholds must be positive");
  }
  const size_t n = oracle.DomainSize();
  const int64_t m =
      CeilToCount(options.sample_constant * b * std::log2(b + 2.0));
  const CountVector counts = oracle.DrawCounts(m);
  const double md = static_cast<double>(counts.total());
  const double singleton_cut = options.singleton_threshold / b;
  const double close_cut = options.close_threshold / b;

  // Greedy left-to-right sweep over the empirical distribution. Zero-count
  // elements can neither be singletons nor move the accumulating mass, so
  // only the non-zero entries are visited (O(#distinct) instead of O(n),
  // and sparse count vectors never densify); `run_begin` tracks the start
  // of the currently accumulating interval, which always resumes right
  // after the last emitted one. The emitted partition is identical to the
  // per-element sweep's.
  std::vector<Interval> intervals;
  size_t run_begin = 0;
  double open_mass = 0.0;
  counts.ForEachNonZero([&](size_t i, int64_t c) {
    const double emp = static_cast<double>(c) / md;
    if (emp >= singleton_cut) {
      if (i > run_begin) intervals.push_back(Interval{run_begin, i});
      intervals.push_back(Interval{i, i + 1});
      run_begin = i + 1;
      open_mass = 0.0;
      return;
    }
    open_mass += emp;
    if (open_mass >= close_cut) {
      intervals.push_back(Interval{run_begin, i + 1});
      run_begin = i + 1;
      open_mass = 0.0;
    }
  });
  if (run_begin < n) intervals.push_back(Interval{run_begin, n});
  return Partition::Create(n, std::move(intervals));
}

}  // namespace histest
