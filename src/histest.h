#ifndef HISTEST_HISTEST_H_
#define HISTEST_HISTEST_H_

/// Umbrella header for the histest library: testing, learning, and
/// summarizing histogram distributions from samples.
///
/// The primary entry points are:
///  - HistogramTester (core/histogram_tester.h): the paper's Algorithm 1 —
///    is the unknown distribution a k-histogram, or eps-far from all of
///    them?
///  - FindSmallestAcceptedK + LearnKHistogramFromOracle
///    (histogram/model_select.h): the model-selection pipeline.
///  - SummarizeColumn (app/summary.h): the database workflow end to end.
///  - EstimateDistanceToHk (testing/distance_estimator.h): the tolerant
///    companion.
///
/// See README.md for the architecture and EXPERIMENTS.md for the
/// reproduction results.

#include "app/column_sketch.h"
#include "app/csv.h"
#include "app/reservoir.h"
#include "app/selectivity.h"
#include "app/summary.h"
#include "common/cli.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "core/approx_part.h"
#include "core/histogram_tester.h"
#include "core/hk_check.h"
#include "core/kmodal_tester.h"
#include "core/learner.h"
#include "core/sieve.h"
#include "dist/continuous.h"
#include "dist/distance.h"
#include "dist/distribution.h"
#include "dist/empirical.h"
#include "dist/generators.h"
#include "dist/interval.h"
#include "dist/perturb.h"
#include "dist/piecewise.h"
#include "dist/sampler.h"
#include "dist/serialize.h"
#include "histogram/breakpoints.h"
#include "histogram/classic.h"
#include "histogram/distance_to_hk.h"
#include "histogram/fit_dp.h"
#include "histogram/fit_merge.h"
#include "histogram/flatten.h"
#include "histogram/modality.h"
#include "histogram/model_select.h"
#include "lowerbound/eps_scaling.h"
#include "lowerbound/paninski_family.h"
#include "lowerbound/permutation.h"
#include "lowerbound/reduction.h"
#include "lowerbound/support_size_family.h"
#include "stats/amplify.h"
#include "stats/bounds.h"
#include "stats/collision.h"
#include "stats/poissonization.h"
#include "stats/support_size.h"
#include "stats/zstat.h"
#include "testing/baseline_cdgr.h"
#include "testing/baseline_ilr.h"
#include "testing/distance_estimator.h"
#include "testing/explicit_partition.h"
#include "testing/identity_adk.h"
#include "testing/naive_tester.h"
#include "testing/oracle.h"
#include "testing/tester.h"
#include "testing/uniformity.h"

#endif  // HISTEST_HISTEST_H_
