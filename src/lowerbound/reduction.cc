#include "lowerbound/reduction.h"

#include <utility>

#include "common/check.h"
#include "common/math_util.h"
#include "lowerbound/permutation.h"
#include "lowerbound/support_size_family.h"
#include "testing/oracle.h"

namespace histest {

SupportSizeDecider::SupportSizeDecider(size_t n, size_t k,
                                       TesterFactory factory,
                                       ReductionOptions options, uint64_t seed)
    : n_(n), k_(k), factory_(std::move(factory)), options_(options),
      rng_(seed) {
  HISTEST_CHECK_GE(k_, 3u);
  m_ = static_cast<size_t>(CeilDiv(3 * (static_cast<int64_t>(k_) - 1), 2));
  HISTEST_CHECK_GE(options_.repetitions, 1);
}

Result<bool> SupportSizeDecider::Decide(const Distribution& d_on_m) {
  if (d_on_m.size() != m_) {
    return Status::InvalidArgument("instance domain must be m = " +
                                   std::to_string(m_));
  }
  if (n_ < 70 * m_) {
    return Status::FailedPrecondition(
        "reduction requires n >= 70 m (Lemma 4.4); have n = " +
        std::to_string(n_) + ", m = " + std::to_string(m_));
  }
  auto embedded = EmbedInLargerDomain(d_on_m, n_);
  HISTEST_RETURN_IF_ERROR(embedded.status());
  int accepts = 0;
  int reps = options_.repetitions;
  if (reps % 2 == 0) ++reps;
  for (int r = 0; r < reps; ++r) {
    const std::vector<size_t> sigma = rng_.Permutation(n_);
    const Distribution d_sigma =
        PermuteDistribution(embedded.value(), sigma);
    DistributionOracle oracle(d_sigma, rng_.Next());
    auto tester = factory_(k_, options_.eps1, rng_.Next());
    HISTEST_CHECK(tester != nullptr);
    auto outcome = tester->Test(oracle);
    HISTEST_RETURN_IF_ERROR(outcome.status());
    samples_used_ += outcome.value().samples_used;
    if (outcome.value().verdict == Verdict::kAccept) ++accepts;
  }
  return accepts * 2 > reps;
}

}  // namespace histest
