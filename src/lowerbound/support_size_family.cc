#include "lowerbound/support_size_family.h"

#include <algorithm>

#include "common/check.h"

namespace histest {

Result<SupportSizeInstance> MakeSupportSizeInstance(size_t m, bool small_side,
                                                    Rng& rng) {
  if (m < 8) return Status::InvalidArgument("m must be >= 8");
  const size_t support = small_side ? m / 3 : (7 * m + 7) / 8;
  HISTEST_CHECK_GE(support, 1u);
  HISTEST_CHECK_LE(support, m);
  // Random support positions via a partial shuffle.
  std::vector<size_t> positions(m);
  for (size_t i = 0; i < m; ++i) positions[i] = i;
  for (size_t j = 0; j < support; ++j) {
    const size_t swap_with =
        j + static_cast<size_t>(rng.UniformInt(m - j));
    std::swap(positions[j], positions[swap_with]);
  }
  std::vector<double> pmf(m, 0.0);
  const double w = 1.0 / static_cast<double>(support);
  for (size_t j = 0; j < support; ++j) pmf[positions[j]] = w;
  auto dist = Distribution::Create(std::move(pmf));
  HISTEST_RETURN_IF_ERROR(dist.status());
  return SupportSizeInstance{std::move(dist).value(), support, small_side};
}

Result<Distribution> EmbedInLargerDomain(const Distribution& d, size_t n) {
  if (n < d.size()) {
    return Status::InvalidArgument("target domain smaller than source");
  }
  std::vector<double> pmf(d.pmf());
  pmf.resize(n, 0.0);
  return Distribution::Create(std::move(pmf));
}

}  // namespace histest
