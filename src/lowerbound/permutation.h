#ifndef HISTEST_LOWERBOUND_PERMUTATION_H_
#define HISTEST_LOWERBOUND_PERMUTATION_H_

#include <cstddef>
#include <vector>

#include "dist/distribution.h"

namespace histest {

/// Inverse of a permutation given as old-index -> new-index.
std::vector<size_t> InversePermutation(const std::vector<size_t>& perm);

/// True iff `perm` is a permutation of {0, ..., perm.size() - 1}.
bool IsPermutation(const std::vector<size_t>& perm);

/// The relabeled distribution D_sigma with D_sigma(perm[i]) = D(i)
/// (the paper's D o sigma^{-1}). Requires perm to be a permutation of the
/// domain.
Distribution PermuteDistribution(const Distribution& d,
                                 const std::vector<size_t>& perm);

}  // namespace histest

#endif  // HISTEST_LOWERBOUND_PERMUTATION_H_
