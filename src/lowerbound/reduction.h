#ifndef HISTEST_LOWERBOUND_REDUCTION_H_
#define HISTEST_LOWERBOUND_REDUCTION_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "dist/distribution.h"
#include "testing/tester.h"

namespace histest {

/// Tuning of the Section 4.2 reduction from SuppSize_m to H_k testing.
struct ReductionOptions {
  /// Independent (permutation, tester) repetitions; the majority vote
  /// amplifies the single-run success probability 17/30 towards 2/3+.
  int repetitions = 5;
  /// The farness parameter the tester is invoked with (the paper's
  /// eps_1 = 1/24).
  double eps1 = 1.0 / 24.0;
};

/// The black-box reduction of Proposition 4.2: any tester for H_k decides
/// the SuppSize_m promise problem, so testing H_k inherits the [VV10]
/// Omega(m / log m) lower bound.
///
/// Given a histogram-tester factory, Decide() embeds the instance into
/// [0, n), applies a uniformly random permutation, runs the tester with
/// parameters (k, eps1), and majority-votes over independent repetitions.
/// Per the paper, m = ceil(3 (k - 1) / 2) and the lemma needs n >= 70 m.
class SupportSizeDecider {
 public:
  using TesterFactory = std::function<std::unique_ptr<DistributionTester>(
      size_t k, double eps, uint64_t seed)>;

  /// Requires k >= 3 and n >= 70 * m(k) (checked in Decide()).
  SupportSizeDecider(size_t n, size_t k, TesterFactory factory,
                     ReductionOptions options, uint64_t seed);

  /// The SuppSize domain size m = ceil(3 (k - 1) / 2).
  size_t m() const { return m_; }

  /// Decides the promise problem for a distribution over [0, m()):
  /// true = "support <= m/3" (tester accepted), false = "support >= 7m/8".
  /// The instance must satisfy the promise for the answer to be meaningful.
  Result<bool> Decide(const Distribution& d_on_m);

  /// Total samples consumed by all Decide() calls so far.
  int64_t samples_used() const { return samples_used_; }

 private:
  size_t n_;
  size_t k_;
  size_t m_;
  TesterFactory factory_;
  ReductionOptions options_;
  Rng rng_;
  int64_t samples_used_ = 0;
};

}  // namespace histest

#endif  // HISTEST_LOWERBOUND_REDUCTION_H_
