#ifndef HISTEST_LOWERBOUND_SUPPORT_SIZE_FAMILY_H_
#define HISTEST_LOWERBOUND_SUPPORT_SIZE_FAMILY_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "dist/distribution.h"

namespace histest {

/// A hard instance of the SuppSize_m promise problem (Section 4.2): a
/// distribution over [0, m) with every non-zero probability at least 1/m
/// and support size either at most m/3 (yes side) or at least 7m/8 (no
/// side). The [VV10] lower bound shows distinguishing the two sides takes
/// Omega(m / log m) samples.
struct SupportSizeInstance {
  Distribution dist;
  size_t support_size = 0;
  /// True for the small-support (yes) side.
  bool is_small = true;
};

/// Builds a SuppSize_m instance uniform over a random support of the
/// appropriate size (floor(m/3) on the yes side, ceil(7m/8) on the no
/// side). Requires m >= 8.
Result<SupportSizeInstance> MakeSupportSizeInstance(size_t m, bool small_side,
                                                    Rng& rng);

/// Zero-pads a distribution on [0, m) into the larger domain [0, n)
/// (the embedding step of the reduction). Requires n >= d.size().
Result<Distribution> EmbedInLargerDomain(const Distribution& d, size_t n);

}  // namespace histest

#endif  // HISTEST_LOWERBOUND_SUPPORT_SIZE_FAMILY_H_
