#include "lowerbound/eps_scaling.h"

namespace histest {

Result<Distribution> EmbedWithSlackElement(const Distribution& d,
                                           double scale) {
  if (!(scale > 0.0) || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  std::vector<double> pmf(d.size() + 1);
  for (size_t i = 0; i < d.size(); ++i) pmf[i] = scale * d[i];
  pmf[d.size()] = 1.0 - scale;
  return Distribution::Create(std::move(pmf));
}

}  // namespace histest
