#include "lowerbound/permutation.h"

#include "common/check.h"

namespace histest {

std::vector<size_t> InversePermutation(const std::vector<size_t>& perm) {
  std::vector<size_t> inv(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    HISTEST_CHECK_LT(perm[i], perm.size());
    inv[perm[i]] = i;
  }
  return inv;
}

bool IsPermutation(const std::vector<size_t>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (size_t p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

Distribution PermuteDistribution(const Distribution& d,
                                 const std::vector<size_t>& perm) {
  HISTEST_CHECK_EQ(d.size(), perm.size());
  HISTEST_CHECK(IsPermutation(perm));
  std::vector<double> pmf(d.size());
  for (size_t i = 0; i < d.size(); ++i) pmf[perm[i]] = d[i];
  auto dist = Distribution::Create(std::move(pmf));
  HISTEST_CHECK_OK(dist);
  return std::move(dist).value();
}

}  // namespace histest
