#include "lowerbound/paninski_family.h"

#include <algorithm>

#include "common/check.h"

namespace histest {

double PaninskiFarnessBound(size_t n, size_t k, double c_eps) {
  HISTEST_CHECK_GT(n, 0u);
  HISTEST_CHECK_EQ(n % 2, 0u);
  const double pairs = static_cast<double>(n) / 2.0;
  const double constant_pairs =
      std::max(0.0, pairs - static_cast<double>(k) + 1.0);
  return constant_pairs * c_eps / static_cast<double>(n);
}

Result<PaninskiInstance> MakePaninskiInstance(size_t n, double eps, double c,
                                              size_t k, Rng& rng) {
  if (n < 2 || n % 2 != 0) {
    return Status::InvalidArgument("n must be even and >= 2");
  }
  if (!(eps > 0.0) || eps > 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1]");
  }
  if (!(c > 0.0) || c * eps > 1.0) {
    return Status::InvalidArgument("need 0 < c and c * eps <= 1");
  }
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  const double c_eps = c * eps;
  const double nd = static_cast<double>(n);
  std::vector<double> pmf(n);
  for (size_t i = 0; i < n / 2; ++i) {
    const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    pmf[2 * i] = (1.0 + sign * c_eps) / nd;
    pmf[2 * i + 1] = (1.0 - sign * c_eps) / nd;
  }
  auto dist = Distribution::Create(std::move(pmf));
  HISTEST_RETURN_IF_ERROR(dist.status());
  return PaninskiInstance{std::move(dist).value(), c_eps, c_eps / 2.0,
                          PaninskiFarnessBound(n, k, c_eps)};
}

}  // namespace histest
