#ifndef HISTEST_LOWERBOUND_PANINSKI_FAMILY_H_
#define HISTEST_LOWERBOUND_PANINSKI_FAMILY_H_

#include <cstddef>

#include "common/rng.h"
#include "common/status.h"
#include "dist/distribution.h"

namespace histest {

/// A member of Paninski's hard family Q_eps (Proposition 4.1): the uniform
/// distribution over an even domain with each pair (2i, 2i+1) perturbed to
/// ((1 +/- c eps)/n, (1 -/+ c eps)/n) by an independent random sign.
struct PaninskiInstance {
  Distribution dist;
  /// The realized perturbation amplitude c * eps (per-element deviation is
  /// c * eps / n).
  double c_eps = 0.0;
  /// Exact TV distance to uniform: c * eps / 2.
  double tv_to_uniform = 0.0;
  /// Certified TV lower bound to H_k (the Prop 4.1 exchange argument).
  double certified_far_from_hk = 0.0;
};

/// Analytic farness bound of any Q_{c eps} member from H_k:
///   d_TV(D, H_k) >= (n/2 - k + 1) * (c eps / n), clamped at 0
/// (every k-histogram is constant across all but k-1 of the n/2 pairs, each
/// constant pair contributing c eps / n to the distance).
double PaninskiFarnessBound(size_t n, size_t k, double c_eps);

/// Draws a uniform member of Q_eps with amplitude c (the paper uses c >= 6
/// so the family is eps-far from H_k whenever k < n/3). Requires n even,
/// n >= 2, eps in (0, 1], and c * eps <= 1. `k` only feeds the certificate.
Result<PaninskiInstance> MakePaninskiInstance(size_t n, double eps, double c,
                                              size_t k, Rng& rng);

}  // namespace histest

#endif  // HISTEST_LOWERBOUND_PANINSKI_FAMILY_H_
