#ifndef HISTEST_LOWERBOUND_EPS_SCALING_H_
#define HISTEST_LOWERBOUND_EPS_SCALING_H_

#include "common/status.h"
#include "dist/distribution.h"

namespace histest {

/// The "standard trick" closing Section 4.2: scale a hard instance's
/// distances by embedding it next to a slack element. Given D over [m],
/// produce D' over [m + 1] with
///   D'(i) = scale * D(i) for i < m,   D'(m) = 1 - scale.
///
/// Distances contract exactly: d_TV(a', b') = scale * d_TV(a, b), so a
/// family that is eps1-hard to test yields an (scale * eps1)-hard family —
/// turning the Omega(k/log k) bound at constant eps1 into
/// Omega((k/log k) / eps) for every eps <= eps1. The slack element costs at
/// most two extra histogram pieces, so farness from H_k degrades only to
/// farness from H_{k-2}.
Result<Distribution> EmbedWithSlackElement(const Distribution& d,
                                           double scale);

}  // namespace histest

#endif  // HISTEST_LOWERBOUND_EPS_SCALING_H_
